//! The sweep-service glue: how a [`SweepMatrix`] becomes a `crp-serve`
//! submission and how a daemon's outcome becomes [`SweepResults`].
//!
//! The split of responsibilities:
//!
//! * **This module (client side)** compiles the matrix exactly like a
//!   local run would, serialises every `(cell, shard)` job to its
//!   canonical [`ShardSpec::to_wire`] encoding, keys jobs and cells by
//!   [`content_hash`], and reassembles the daemon's bit-exact
//!   accumulator blobs into the same [`SweepResults`] a local run
//!   produces — so `crp_experiments submit --csv` is byte-for-byte
//!   compatible with `sweep --csv`.
//! * **This module (server side)** supplies the two closures a
//!   payload-agnostic [`crp_serve::SweepServer`] needs:
//!   [`merge_cell_answers`] (shard-order accumulator merge) and
//!   [`check_answer`] (accumulator-codec validation of worker answers
//!   and cache reads).
//!
//! Because a job's cache key is the hash of its canonical wire encoding,
//! *any* change to the protocol spec, the scenario masses, the shard
//! plan, or the seed produces a different key — cache invalidation is
//! structural, with no versioning bookkeeping to forget.

use crp_fleet::content_hash;
use crp_serve::wire::{cell_hash, Submission, SubmissionCell, SubmissionJob};
use crp_serve::{ServeClient, SubmissionHooks, SubmissionOutcome};

use crate::runner::{ShardPlan, ShardSpec};
use crate::stats::TrialAccumulator;
use crate::sweep::{SweepCellResult, SweepMatrix, SweepResults};
use crate::SimError;

/// Everything the client keeps per cell to reassemble [`SweepResults`]
/// from a daemon outcome (the daemon only ever sees hashes and blobs).
pub struct CellTicket {
    /// Scenario-axis label.
    pub scenario: String,
    /// Protocol-axis label.
    pub protocol: String,
    /// Monte-Carlo trial budget of the cell.
    pub trials: usize,
    /// Condensed entropy `H(c(X))` of the scenario truth.
    pub condensed_entropy: f64,
    /// Divergence `D_KL(c(X) ‖ c(Y))` between truth and advice.
    pub advice_divergence: f64,
}

/// Compiles a matrix into a `crp-serve` submission plus the per-cell
/// tickets needed to interpret the result.
///
/// # Errors
///
/// Compilation errors (unknown protocols, invalid cells), and
/// [`SimError::Backend`] for cells built from custom protocol objects —
/// those have no wire encoding and cannot be shipped to a service.
pub fn compile_submission(matrix: &SweepMatrix) -> Result<(Submission, Vec<CellTicket>), SimError> {
    let cells = matrix.compile()?;
    let mut blobs = crp_fleet::BlobSet::new();
    let mut submission_cells = Vec::with_capacity(cells.len());
    let mut tickets = Vec::with_capacity(cells.len());
    for cell in &cells {
        let spec = cell
            .simulation
            .shard_spec()
            .ok_or_else(|| SimError::Backend {
                what: format!(
                    "cell {}/{} was built from a custom protocol object and has no wire \
                 encoding; run it locally on the serial or thread backend",
                    cell.scenario, cell.protocol
                ),
            })?;
        let config = cell.simulation.config();
        let plan = ShardPlan::new(config.trials);
        let mut jobs = Vec::with_capacity(plan.num_shards());
        for shard in 0..plan.num_shards() {
            let inline = spec.to_wire(plan, config.base_seed, shard);
            let (compact, refs) =
                match spec.to_wire_compact(plan, config.base_seed, shard, &mut blobs) {
                    Some((compact, refs)) => (Some(compact), refs),
                    None => (None, Vec::new()),
                };
            let hash = content_hash(inline.as_bytes());
            // A job with a compact form ships compact-only: the masses
            // travel once in the submission's blob table, and the
            // server reconstructs (and hash-verifies) the canonical
            // inline through the canonicalizer hook.  Without one, the
            // canonical encoding ships directly.
            let inline = if compact.is_some() {
                None
            } else {
                Some(inline)
            };
            jobs.push(SubmissionJob {
                hash,
                inline,
                compact,
                refs,
            });
        }
        let hashes: Vec<String> = jobs.iter().map(|job| job.hash.clone()).collect();
        submission_cells.push(SubmissionCell {
            hash: cell_hash(&hashes),
            jobs,
        });
        tickets.push(CellTicket {
            scenario: cell.scenario.clone(),
            protocol: cell.protocol.clone(),
            trials: cell.trials,
            condensed_entropy: cell.condensed_entropy,
            advice_divergence: cell.advice_divergence,
        });
    }
    Ok((
        Submission {
            blobs: blobs
                .iter()
                .map(|(hash, blob)| (hash.to_string(), blob.to_string()))
                .collect(),
            cells: submission_cells,
        },
        tickets,
    ))
}

/// Reassembles a daemon outcome into the [`SweepResults`] the local
/// sweep path produces — bit-identical statistics, same grid order.
///
/// # Errors
///
/// [`SimError::Backend`] when the outcome does not match the submission
/// (cell count) or a blob fails the accumulator codec.
pub fn results_from_outcome(
    tickets: Vec<CellTicket>,
    outcome: &SubmissionOutcome,
) -> Result<SweepResults, SimError> {
    if outcome.cells.len() != tickets.len() {
        return Err(SimError::Backend {
            what: format!(
                "the sweep server answered {} cells for a {}-cell submission",
                outcome.cells.len(),
                tickets.len()
            ),
        });
    }
    let cells = tickets
        .into_iter()
        .zip(&outcome.cells)
        .map(|(ticket, cell)| {
            let accumulator =
                TrialAccumulator::from_wire(&cell.blob).map_err(|e| SimError::Backend {
                    what: format!("malformed cell blob from the sweep server: {e}"),
                })?;
            Ok(SweepCellResult {
                scenario: ticket.scenario,
                protocol: ticket.protocol,
                trials: ticket.trials,
                condensed_entropy: ticket.condensed_entropy,
                advice_divergence: ticket.advice_divergence,
                stats: accumulator.finalize(),
            })
        })
        .collect::<Result<Vec<SweepCellResult>, SimError>>()?;
    Ok(SweepResults::from_cells(cells))
}

/// Submits a matrix to a running sweep daemon and returns the results
/// plus the daemon's cache statistics.  `progress` receives
/// `(settled_jobs, total_jobs, cache_hits)` as the server streams them.
///
/// # Errors
///
/// Compilation errors, connection/protocol failures, and server-reported
/// submission errors (all as typed [`SimError`]s).
pub fn submit_matrix(
    addr: &str,
    matrix: &SweepMatrix,
    progress: impl FnMut(usize, usize, usize),
) -> Result<(SweepResults, SubmissionOutcome), SimError> {
    submit_matrix_as(addr, None, matrix, progress)
}

/// Like [`submit_matrix`], naming the tenant the daemon should account
/// the submission to (its `serve.tenant.<id>.*` counters); `None`
/// submits as the `anonymous` tenant.
///
/// # Errors
///
/// As [`submit_matrix`].
pub fn submit_matrix_as(
    addr: &str,
    tenant: Option<&str>,
    matrix: &SweepMatrix,
    mut progress: impl FnMut(usize, usize, usize),
) -> Result<(SweepResults, SubmissionOutcome), SimError> {
    let (submission, tickets) = compile_submission(matrix)?;
    let mut client = match tenant {
        Some(tenant) => ServeClient::connect_as(addr, tenant),
        None => ServeClient::connect(addr),
    }
    .map_err(|e| SimError::Backend {
        what: e.to_string(),
    })?;
    let outcome = client
        .submit(&submission, |settled, total, hits| {
            progress(settled, total, hits)
        })
        .map_err(|e| SimError::Backend {
            what: e.to_string(),
        })?;
    let results = results_from_outcome(tickets, &outcome)?;
    Ok((results, outcome))
}

/// The server-side canonicalizer: parses a compact shard-spec payload
/// (resolving `ref <hash>` sections through the submission's blob
/// table) and re-serialises it to the canonical inline encoding the
/// job's cache key hashes.
///
/// # Errors
///
/// The codec's description of a malformed payload or an unresolvable
/// blob reference.
pub fn canonicalize_compact_spec(
    compact: &str,
    resolve: &dyn Fn(&str) -> Option<String>,
) -> Result<String, String> {
    let (spec, plan, base_seed, shard) =
        ShardSpec::from_wire_with(compact, resolve).map_err(|e| e.to_string())?;
    Ok(spec.to_wire(plan, base_seed, shard))
}

/// The hooks a [`crp_serve::SweepServer`] needs to host sweep
/// submissions: accumulator merge, accumulator validation, and the
/// compact-spec canonicalizer.
pub fn sweep_hooks() -> SubmissionHooks<'static> {
    SubmissionHooks {
        merge: &merge_cell_answers,
        check: &check_answer,
        canonicalize: &canonicalize_compact_spec,
    }
}

/// The server-side cell merger: parses each shard answer, merges in
/// submission (= shard) order, and re-serialises — producing exactly the
/// accumulator a local run would have merged, bit for bit.
///
/// # Errors
///
/// A description of the first malformed answer (the server turns it into
/// a submission error; in practice [`check_answer`] has already vetted
/// every answer).
pub fn merge_cell_answers(answers: &[String]) -> Result<String, String> {
    let mut merged = TrialAccumulator::new();
    for answer in answers {
        merged.merge(&TrialAccumulator::from_wire(answer)?);
    }
    Ok(merged.to_wire())
}

/// The server-side answer check: a blob (worker answer or cache read)
/// must round-trip the accumulator codec before it is trusted.
///
/// # Errors
///
/// The codec's description of the first malformed line.
pub fn check_answer(answer: &str) -> Result<(), String> {
    TrialAccumulator::from_wire(answer).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepProtocol;
    use crp_predict::ScenarioLibrary;
    use crp_protocols::ProtocolSpec;

    fn demo_matrix(trials: usize) -> SweepMatrix {
        let library = ScenarioLibrary::new(256).unwrap();
        SweepMatrix::new()
            .scenarios([library.bimodal(), library.adversarial_drift()])
            .protocol(
                SweepProtocol::from_scenario("decay", |s| {
                    ProtocolSpec::new("decay").universe(s.distribution().max_size())
                })
                .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
            )
            .trials(trials)
            .seed(11)
    }

    #[test]
    fn submissions_share_scenario_blobs_across_jobs() {
        // 600 trials = 3 shards per cell; both cells of a scenario share
        // its masses blob, so the blob table stays small.
        let (submission, tickets) = compile_submission(&demo_matrix(600)).unwrap();
        assert_eq!(submission.cells.len(), 2);
        assert_eq!(tickets.len(), 2);
        assert_eq!(submission.job_count(), 6);
        submission.verify_hashes().unwrap();
        // Two scenarios → two truth blobs (no predictions in this grid);
        // every job references its scenario's blob.
        assert_eq!(submission.blobs.len(), 2);
        for cell in &submission.cells {
            for job in &cell.jobs {
                assert!(job.compact.is_some());
                assert!(
                    job.inline.is_none(),
                    "compact jobs must not duplicate their masses inline"
                );
                assert_eq!(job.refs.len(), 1);
                // The server can reconstruct the canonical bytes the
                // hash addresses from compact + blobs alone.
                let resolve = |hash: &str| {
                    submission
                        .blobs
                        .iter()
                        .find(|(h, _)| h == hash)
                        .map(|(_, blob)| blob.clone())
                };
                let canonical =
                    canonicalize_compact_spec(job.compact.as_deref().unwrap(), &resolve).unwrap();
                assert_eq!(content_hash(canonical.as_bytes()), job.hash);
            }
        }
    }

    #[test]
    fn job_hashes_change_with_spec_masses_plan_and_seed() {
        let library = ScenarioLibrary::new(256).unwrap();
        let base = |matrix: &SweepMatrix| {
            let (submission, _) = compile_submission(matrix).unwrap();
            submission.cells[0].jobs[0].hash.clone()
        };
        let reference = base(&demo_matrix(600));
        // Different seed → different hash.
        assert_ne!(reference, base(&demo_matrix(600).seed(12)));
        // Different plan (trial budget) → different hash.
        assert_ne!(reference, base(&demo_matrix(900)));
        // Different protocol spec → different hash.
        let other_protocol = SweepMatrix::new()
            .scenario(library.bimodal())
            .protocol(
                SweepProtocol::from_scenario("willard", |s| {
                    ProtocolSpec::new("willard").universe(s.distribution().max_size())
                })
                .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
            )
            .trials(600)
            .seed(11);
        assert_ne!(reference, base(&other_protocol));
        // Different scenario masses → different hash.
        let other_scenario = SweepMatrix::new()
            .scenario(library.geometric())
            .protocol(
                SweepProtocol::from_scenario("decay", |s| {
                    ProtocolSpec::new("decay").universe(s.distribution().max_size())
                })
                .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
            )
            .trials(600)
            .seed(11);
        assert_ne!(reference, base(&other_scenario));
    }

    #[test]
    fn merge_matches_the_local_shard_order_merge() {
        // Merging wire answers shard by shard must equal merging the
        // accumulators in process.
        let mut a = TrialAccumulator::new();
        let mut b = TrialAccumulator::new();
        for i in 0..100u64 {
            a.record(i % 7 != 0, i + 1);
            b.record(i % 3 != 0, 2 * i + 5);
        }
        let merged_wire =
            merge_cell_answers(&[a.to_wire(), b.to_wire()]).expect("well-formed answers merge");
        let mut local = TrialAccumulator::new();
        local.merge(&a);
        local.merge(&b);
        assert_eq!(merged_wire, local.to_wire());
        check_answer(&merged_wire).unwrap();
        assert!(check_answer("not an accumulator").is_err());
    }
}
