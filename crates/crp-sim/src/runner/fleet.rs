//! The fleet shard backend: shard jobs dispatched to long-lived workers
//! over the `crp-fleet` transport.
//!
//! Where [`crate::ProcessBackend`] pays a fresh subprocess spawn per
//! shard job, [`FleetBackend`] keeps a pool of persistent workers — local
//! `crp_experiments worker --stdio` subprocesses, remote
//! `crp_experiments worker --listen host:port` processes dialled over
//! TCP, or a mix of both from a [`FleetManifest`] — and streams every
//! job's [`ShardSpec`] wire message to whichever worker is free.  The
//! dispatcher re-dispatches the jobs of dead or straggling workers and
//! deduplicates completions by job id; because a shard's accumulator is a
//! deterministic function of its spec, retries and duplicates cannot
//! change the statistics, and the shard-order merge stays bit-identical
//! to the serial backend.

use std::net::SocketAddr;
use std::path::PathBuf;

use crp_fleet::{
    BlobSet, DispatchMode, DispatchTuning, Dispatcher, FleetError, FleetManifest, JobPayload,
    WorkerEndpoint,
};

use crate::runner::backend::{JobDoneFn, ShardBackend, ShardJob};
use crate::runner::plan::RunnerConfig;
use crate::runner::process::worker_binary;
use crate::stats::TrialAccumulator;
use crate::SimError;

/// The arguments that put the worker binary into stdio worker mode.
fn stdio_worker_args() -> Vec<String> {
    vec!["worker".to_string(), "--stdio".to_string()]
}

/// Strictly parses the `CRP_FLEET` manifest: `Ok(None)` when unset, the
/// parsed [`FleetManifest`] when valid, and a typed [`SimError::Config`]
/// naming the offending value otherwise.
///
/// # Errors
///
/// [`SimError::Config`] for a manifest [`FleetManifest::parse`] rejects.
pub fn env_fleet_manifest() -> Result<Option<FleetManifest>, SimError> {
    let Ok(value) = std::env::var("CRP_FLEET") else {
        return Ok(None);
    };
    match FleetManifest::parse(&value) {
        Ok(manifest) => Ok(Some(manifest)),
        Err(err) => Err(SimError::Config {
            var: "CRP_FLEET".to_string(),
            value,
            what: err.to_string(),
        }),
    }
}

/// Strictly parses the `CRP_FLEET_DISPATCH` dispatch-mode override:
/// `Ok(None)` when unset, the parsed [`DispatchMode`] when valid, and a
/// typed [`SimError::Config`] listing the valid names otherwise — the
/// CLI convention `CRP_KERNEL` and `CRP_FLEET_POLL_MS` follow.  The
/// lenient library default ([`DispatchMode::from_env`] inside the
/// dispatcher) warns once and falls back instead.
///
/// # Errors
///
/// [`SimError::Config`] for a value [`DispatchMode`] cannot parse.
pub fn env_fleet_dispatch() -> Result<Option<DispatchMode>, SimError> {
    DispatchMode::try_from_env().map_err(|err| match err {
        FleetError::Env { var, value, reason } => SimError::Config {
            var,
            value,
            what: reason,
        },
        other => fleet_error(other),
    })
}

/// Executes shard jobs on a pool of persistent fleet workers.
///
/// The backend owns its [`Dispatcher`], whose worker connections stay
/// *warm* across [`ShardBackend::execute`] calls: repeated runs through
/// the same backend (a sweep service answering submissions, a bench
/// re-running a grid) reuse the same live worker processes, their
/// scenario stores, and their shipped blobs.
pub struct FleetBackend {
    dispatcher: Dispatcher,
}

impl FleetBackend {
    /// A pool of `workers` persistent local subprocesses (clamped to at
    /// least 1), resolving the worker binary automatically.
    ///
    /// # Errors
    ///
    /// [`SimError::Backend`] when the worker binary cannot be located.
    pub fn local(workers: usize) -> Result<Self, SimError> {
        Ok(Self::local_with_command(workers, worker_binary(None)?))
    }

    /// Like [`FleetBackend::local`], with an explicit worker binary (how
    /// integration tests point the pool at `CARGO_BIN_EXE_crp_experiments`).
    pub fn local_with_command(workers: usize, command: impl Into<PathBuf>) -> Self {
        let command = command.into();
        Self::with_endpoints(
            (0..workers.max(1))
                .map(|_| WorkerEndpoint::local(command.clone(), stdio_worker_args()))
                .collect(),
        )
    }

    /// A pool described by a [`FleetManifest`]: `local:N` entries become
    /// N spawned subprocesses, `host:port` entries are dialled over TCP.
    ///
    /// # Errors
    ///
    /// [`SimError::Backend`] when the manifest names local workers and
    /// the worker binary cannot be located.
    pub fn from_manifest(manifest: &FleetManifest) -> Result<Self, SimError> {
        let needs_local = manifest
            .entries()
            .iter()
            .any(|entry| matches!(entry, crp_fleet::FleetEntry::Local { .. }));
        let program = if needs_local {
            worker_binary(None)?
        } else {
            PathBuf::new()
        };
        Ok(Self::with_weighted_endpoints(
            manifest.weighted_endpoints(program, stdio_worker_args()),
        ))
    }

    /// The pool the `CRP_FLEET` environment variable describes, falling
    /// back to `workers` local subprocesses when it is unset.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] for an invalid manifest, [`SimError::Backend`]
    /// when a needed worker binary cannot be located.
    pub fn from_env_or_local(workers: usize) -> Result<Self, SimError> {
        match env_fleet_manifest()? {
            Some(manifest) => Self::from_manifest(&manifest),
            None => Self::local(workers),
        }
    }

    /// The pool a [`RunnerConfig`] selects: its typed
    /// [`RunnerConfig::fleet`] manifest when set, otherwise the
    /// `CRP_FLEET` environment variable, otherwise `config.threads`
    /// local subprocess workers — with the config's
    /// [`RunnerConfig::chaos`] plan (if any) compiled onto the pool's
    /// local endpoints as fault-injection spawn environment, the
    /// dispatch tuning parsed *strictly* from `CRP_FLEET_POLL_MS`
    /// (a malformed value is a typed error here, not a warning), and a
    /// [`RunnerConfig::accept_workers`] registration listener bound
    /// when configured.
    ///
    /// # Errors
    ///
    /// As [`FleetBackend::from_env_or_local`], plus [`SimError::Backend`]
    /// when the chaos plan targets an endpoint it cannot sabotage or
    /// the registration listener cannot be bound, and
    /// [`SimError::Config`] for a malformed `CRP_FLEET_POLL_MS`.
    pub fn from_config(config: &RunnerConfig) -> Result<Self, SimError> {
        let tuning = DispatchTuning::try_from_env().map_err(|err| match err {
            FleetError::Env { var, value, reason } => SimError::Config {
                var,
                value,
                what: reason,
            },
            other => fleet_error(other),
        })?;
        let backend = match &config.fleet {
            Some(manifest) => Self::from_manifest(manifest),
            None => Self::from_env_or_local(config.threads),
        }?;
        let backend = match &config.chaos {
            None => backend,
            Some(plan) if plan.is_empty() => backend,
            Some(plan) => {
                // Chaos rewrites endpoints in place (same order), so the
                // capacity weights re-pair positionally.
                let sabotaged = plan.apply(backend.endpoints()).map_err(fleet_error)?;
                let weights = backend.dispatcher.weights().to_vec();
                Self::with_weighted_endpoints(sabotaged.into_iter().zip(weights).collect())
            }
        };
        let backend = Self {
            dispatcher: backend.dispatcher.with_tuning(tuning),
        };
        if let Some(addr) = &config.accept_workers {
            backend.listen_for_workers(addr)?;
        }
        Ok(backend)
    }

    /// A pool over explicit endpoints (the fault-injection tests build
    /// pools mixing healthy and sabotaged workers this way).
    pub fn with_endpoints(endpoints: Vec<WorkerEndpoint>) -> Self {
        Self {
            dispatcher: Dispatcher::new(endpoints),
        }
    }

    /// A pool over explicit `(endpoint, capacity weight)` pairs — the
    /// scheduler keeps up to `hello capacity × weight` jobs in flight
    /// per connection.
    pub fn with_weighted_endpoints(endpoints: Vec<(WorkerEndpoint, usize)>) -> Self {
        Self {
            dispatcher: Dispatcher::new_weighted(endpoints),
        }
    }

    /// Returns a copy pinned to a dispatch mode (tests compare the
    /// event-loop and legacy threaded schedulers through this).
    pub fn with_dispatch_mode(self, mode: DispatchMode) -> Self {
        Self {
            dispatcher: self.dispatcher.with_mode(mode),
        }
    }

    /// Opens the elastic-membership registration listener: workers that
    /// run `crp_experiments worker --join <addr>` are folded into
    /// subsequent (or running) batches.  Returns the bound address.
    ///
    /// # Errors
    ///
    /// [`SimError::Backend`] when the address cannot be bound.
    pub fn listen_for_workers(&self, addr: &str) -> Result<SocketAddr, SimError> {
        self.dispatcher
            .listen_for_workers(addr)
            .map_err(fleet_error)
    }

    /// The pool's endpoints.
    pub fn endpoints(&self) -> &[WorkerEndpoint] {
        self.dispatcher.endpoints()
    }

    /// The warm dispatcher behind this backend.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }
}

fn fleet_error(err: FleetError) -> SimError {
    SimError::Backend {
        what: err.to_string(),
    }
}

impl ShardBackend for FleetBackend {
    fn name(&self) -> &'static str {
        "fleet"
    }

    fn execute(
        &self,
        jobs: &[ShardJob<'_>],
        done: JobDoneFn<'_>,
    ) -> Result<Vec<TrialAccumulator>, SimError> {
        // Each job ships as an inline payload plus (when the spec has
        // masses) a compact payload referencing the scenario blobs by
        // hash — the dispatcher ships each blob once per v2 worker and
        // falls back to inline for v1 workers.
        let mut blobs = BlobSet::new();
        // When tracing, every job also carries a deterministic span —
        // derived from the content hash of its inline payload, never
        // randomness — so the dispatcher's `fleet.dispatch` and the
        // worker's `shard.execute` events correlate across processes.
        // Spans ride outside the payload and never reach the handler's
        // input, so statistics are bit-identical either way.
        let stamp_spans = crp_obs::trace_enabled();
        let payloads = jobs
            .iter()
            .map(|job| {
                let spec = job.spec.ok_or_else(|| SimError::Backend {
                    what: format!(
                        "the fleet backend requires a registry-described simulation, but cell {} \
                         was built from a raw closure or a custom protocol object; use the serial \
                         or thread backend for it",
                        job.cell
                    ),
                })?;
                let inline = spec.to_wire(job.plan, job.base_seed, job.shard);
                let span = stamp_spans.then(|| crp_fleet::JobSpan {
                    id: crp_obs::span_from_hash(&crp_fleet::content_hash(inline.as_bytes())),
                    parent: None,
                });
                let payload =
                    match spec.to_wire_compact(job.plan, job.base_seed, job.shard, &mut blobs) {
                        Some((compact, refs)) => JobPayload::with_compact(inline, compact, refs),
                        None => JobPayload::inline(inline),
                    };
                Ok(match span {
                    Some(span) => payload.with_span(span),
                    None => payload,
                })
            })
            .collect::<Result<Vec<JobPayload>, SimError>>()?;
        // Validate inside the dispatcher, before a job settles: a
        // well-framed answer whose accumulator body is corrupt is then
        // retried on another worker instead of failing the whole batch.
        let answers = self
            .dispatcher
            .dispatch_jobs(&payloads, &blobs, done, &|_, answer| {
                TrialAccumulator::from_wire(answer).map(|_| ())
            })
            .map_err(fleet_error)?;
        answers
            .iter()
            .map(|answer| {
                TrialAccumulator::from_wire(answer).map_err(|e| SimError::Backend {
                    what: format!("malformed fleet worker accumulator: {e}"),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_fleet_manifest_surfaces_a_typed_config_error() {
        // CRP_FLEET is only read here and in the test below; no other
        // test in this binary touches it, so set/remove is race-free.
        std::env::set_var("CRP_FLEET", "local:0");
        let err = env_fleet_manifest().unwrap_err();
        match &err {
            SimError::Config { var, value, .. } => {
                assert_eq!(var, "CRP_FLEET");
                assert_eq!(value, "local:0");
            }
            other => panic!("expected SimError::Config, got {other:?}"),
        }
        assert!(err.to_string().contains("local:0"), "{err}");

        std::env::set_var("CRP_FLEET", "local:2,10.0.0.7:9311");
        let manifest = env_fleet_manifest().unwrap().unwrap();
        assert_eq!(manifest.entries().len(), 2);

        // Capacity weights ride through the environment variable too.
        std::env::set_var("CRP_FLEET", "local:2*3,10.0.0.7:9311*2");
        let manifest = env_fleet_manifest().unwrap().unwrap();
        assert_eq!(
            manifest.entries(),
            &[
                crp_fleet::FleetEntry::Local {
                    workers: 2,
                    weight: 3
                },
                crp_fleet::FleetEntry::Tcp {
                    addr: "10.0.0.7:9311".to_string(),
                    weight: 2
                },
            ]
        );
        // And a malformed weight is a typed config error, not a clamp.
        std::env::set_var("CRP_FLEET", "local:2*0");
        let err = env_fleet_manifest().unwrap_err();
        assert!(err.to_string().contains("weight"), "{err}");

        std::env::remove_var("CRP_FLEET");
        assert!(env_fleet_manifest().unwrap().is_none());
    }

    #[test]
    fn manifest_pools_expand_local_entries_to_subprocess_endpoints() {
        let manifest = FleetManifest::parse("local:3,127.0.0.1:9311").unwrap();
        let backend = FleetBackend::from_manifest(&manifest);
        // Worker-binary resolution may fail in stripped environments; the
        // interesting property is the expansion, so only assert on
        // success.
        if let Ok(backend) = backend {
            assert_eq!(backend.endpoints().len(), 4);
            assert_eq!(backend.name(), "fleet");
        }
        let remote_only = FleetManifest::parse("127.0.0.1:9311,127.0.0.1:9312").unwrap();
        let backend = FleetBackend::from_manifest(&remote_only).unwrap();
        assert_eq!(
            backend.endpoints(),
            &[
                WorkerEndpoint::tcp("127.0.0.1:9311"),
                WorkerEndpoint::tcp("127.0.0.1:9312"),
            ],
            "remote-only manifests never need the local worker binary"
        );
    }

    #[test]
    fn manifest_weights_reach_the_dispatcher() {
        let weighted = FleetManifest::parse("127.0.0.1:9311*4,127.0.0.1:9312").unwrap();
        let backend = FleetBackend::from_manifest(&weighted).unwrap();
        assert_eq!(backend.dispatcher().weights(), &[4, 1]);
    }
}
