//! The scoped-thread shard backend: a fixed pool of workers stealing jobs
//! from one shared queue.
//!
//! This is the former hard-wired parallel path of `run_batch`, extracted
//! behind [`crate::ShardBackend`].  The "queue" is an atomic cursor over
//! the job slice (see [`steal_jobs`]): whichever worker is free claims the
//! next unclaimed job, so grids of many small cells keep every worker busy
//! without any per-cell barriers.  Results land in per-job slots and are
//! collected in job order afterwards, which keeps the output independent
//! of scheduling.

use crate::runner::backend::{steal_jobs, JobDoneFn, ShardBackend, ShardJob};
use crate::stats::TrialAccumulator;
use crate::SimError;

/// Executes shard jobs on `workers` scoped threads pulling from a shared
/// queue (work stealing at shard granularity).
#[derive(Debug, Clone, Copy)]
pub struct ThreadBackend {
    workers: usize,
}

impl ThreadBackend {
    /// A backend with `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl ShardBackend for ThreadBackend {
    fn name(&self) -> &'static str {
        "thread"
    }

    fn execute(
        &self,
        jobs: &[ShardJob<'_>],
        done: JobDoneFn<'_>,
    ) -> Result<Vec<TrialAccumulator>, SimError> {
        steal_jobs(self.workers, jobs, done, |job| job.run_inline())
    }
}
