//! The executor-agnostic shard backend abstraction.
//!
//! A [`ShardJob`] is the unit of schedulable work: one shard of one cell
//! (a cell being a single batch — a [`crate::Simulation`] — or one cell of
//! a [`crate::SweepMatrix`] grid).  An object-safe [`ShardBackend`] takes a
//! slice of jobs and returns one [`TrialAccumulator`] per job, in job
//! order.  Because the shard plans, the per-shard RNG streams and the
//! merge order are all fixed before any backend runs, backends only decide
//! *where* shards execute — inline ([`SerialBackend`]), on scoped worker
//! threads stealing from a shared queue ([`crate::ThreadBackend`]), in
//! `crp_experiments shard-worker` subprocesses
//! ([`crate::ProcessBackend`]), or on a pool of persistent local and
//! remote fleet workers ([`crate::FleetBackend`]) — and the resulting
//! statistics are bit-identical across all of them.

use rand_chacha::ChaCha8Rng;

use crate::runner::fleet::FleetBackend;
use crate::runner::kernel::CellKernel;
use crate::runner::plan::{BackendChoice, RunnerConfig, ShardPlan, TrialOutcome};
use crate::runner::process::ShardSpec;
use crate::runner::thread::ThreadBackend;
use crate::stats::{TrialAccumulator, TrialStats};
use crate::SimError;

/// A borrowed, thread-safe trial closure: the in-process form of a cell's
/// work.  The closure receives the shard's deterministically seeded RNG and
/// runs one trial.
pub type TrialFn<'a> = &'a (dyn Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync);

/// A job-completion callback, invoked with the index of the finished job in
/// the slice passed to [`ShardBackend::execute`] (possibly from a worker
/// thread, and in completion order — not job order).
pub type JobDoneFn<'a> = &'a (dyn Fn(usize) + Sync);

/// One unit of backend work: one shard of one cell.
pub struct ShardJob<'a> {
    /// Index of the cell this shard belongs to.  Jobs of the same cell must
    /// be contiguous and in ascending shard order so the driver can merge
    /// per-cell accumulators deterministically.
    pub cell: usize,
    /// Shard index within the cell's plan.
    pub shard: usize,
    /// The cell's shard plan.
    pub plan: ShardPlan,
    /// The cell's base seed.
    pub base_seed: u64,
    /// The cell's trial closure, for in-process backends.
    pub trial: TrialFn<'a>,
    /// The cell's serialisable description, for out-of-process backends
    /// (absent when the cell was built around a raw closure or a custom
    /// protocol object).
    pub spec: Option<&'a ShardSpec>,
    /// The cell's batched trial kernel, when the configured
    /// [`crate::KernelChoice`] and the protocol admit one.  `None` runs
    /// the scalar trial-at-a-time path; either way the statistics are
    /// bit-identical (both consume the same per-trial RNG streams in the
    /// same order).
    pub(crate) kernel: Option<&'a CellKernel<'a>>,
}

impl ShardJob<'_> {
    /// Runs this job inline on the calling thread: the cell's batched
    /// kernel when one was selected, otherwise the scalar path folding
    /// the shard's trials into a fresh accumulator in trial order,
    /// stopping at the first failed trial.
    pub fn run_inline(&self) -> Result<TrialAccumulator, SimError> {
        let started = std::time::Instant::now();
        let accumulator = self.run_uninstrumented()?;
        // Counters and the guarded trace event only observe the shard
        // after its accumulator is final: nothing here can perturb RNG
        // streams or merge order, so statistics stay bit-identical with
        // observability on or off.
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let registry = crp_obs::global();
        registry.inc("sim.shard.execute");
        registry.observe("sim.shard_micros", micros);
        if crp_obs::trace_enabled() {
            let mut event = crp_obs::TraceEvent::new("shard.execute")
                .u64("cell", self.cell as u64)
                .u64("shard", self.shard as u64)
                .u64("trials", self.plan.shard_trials(self.shard) as u64)
                .str("kernel", self.kernel.map_or("scalar", |k| k.name()))
                .u64("micros", micros);
            // A fleet worker sets the thread's span from the job frame
            // before invoking the handler; stamping it here is what
            // lets `trace-join` tie this worker-side event to the
            // dispatcher's `fleet.dispatch` for the same job.
            if let Some(span) = crp_obs::current_span() {
                event = span.stamp(event);
            }
            crp_obs::emit(&event);
        }
        Ok(accumulator)
    }

    fn run_uninstrumented(&self) -> Result<TrialAccumulator, SimError> {
        if let Some(kernel) = self.kernel {
            return kernel.run_shard(self.plan, self.base_seed, self.shard);
        }
        let mut accumulator = TrialAccumulator::new();
        for offset in 0..self.plan.shard_trials(self.shard) {
            let trial = self.plan.trial_index(self.shard, offset);
            let mut rng = ShardPlan::trial_rng(self.base_seed, trial);
            let outcome = (self.trial)(&mut rng)?;
            accumulator.record(outcome.resolved, outcome.rounds as u64);
        }
        Ok(accumulator)
    }
}

/// An executor for shard jobs.
///
/// Implementations must deliver one accumulator per job, in job order, and
/// report the error of the *lowest-indexed* failing job (so error
/// reporting, like the statistics, is independent of scheduling).  They
/// should invoke `done(index)` once per completed job.
pub trait ShardBackend: Sync {
    /// A short stable name (`"serial"`, `"thread"`, `"process"`), used in
    /// diagnostics.
    fn name(&self) -> &'static str;

    /// Executes every job and returns the accumulators in job order.
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] of the lowest-indexed failing job.
    fn execute(
        &self,
        jobs: &[ShardJob<'_>],
        done: JobDoneFn<'_>,
    ) -> Result<Vec<TrialAccumulator>, SimError>;
}

/// Runs every shard inline on the calling thread, in job order.
///
/// The reference implementation: no queues, no threads, no subprocesses —
/// useful in tests, in the `shard-worker` subprocess itself, and as the
/// semantics every other backend must reproduce bit-for-bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialBackend;

impl ShardBackend for SerialBackend {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute(
        &self,
        jobs: &[ShardJob<'_>],
        done: JobDoneFn<'_>,
    ) -> Result<Vec<TrialAccumulator>, SimError> {
        steal_jobs(1, jobs, done, |job| job.run_inline())
    }
}

/// The shared work-stealing driver under every backend: `workers` scoped
/// threads claim jobs from an atomic cursor over the job slice (whichever
/// worker is free takes the next unclaimed job) and apply `run_job` to
/// each; results land in per-job slots and are collected in job order, so
/// the output — including which error wins (the lowest-indexed job's) —
/// is independent of scheduling.  With one worker (or one job) this is a
/// plain in-order loop that stops at the first error.
pub(crate) fn steal_jobs(
    workers: usize,
    jobs: &[ShardJob<'_>],
    done: JobDoneFn<'_>,
    run_job: impl Fn(&ShardJob<'_>) -> Result<TrialAccumulator, SimError> + Sync,
) -> Result<Vec<TrialAccumulator>, SimError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = workers.max(1).min(jobs.len());
    if workers <= 1 {
        // In-order execution means the first error encountered is the
        // lowest-indexed one.
        let mut accumulators = Vec::with_capacity(jobs.len());
        for (index, job) in jobs.iter().enumerate() {
            accumulators.push(run_job(job)?);
            done(index);
        }
        return Ok(accumulators);
    }

    let slots: Mutex<Vec<Option<Result<TrialAccumulator, SimError>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= jobs.len() {
                    break;
                }
                let result = run_job(&jobs[index]);
                slots
                    .lock()
                    .expect("no worker panics while holding the lock")[index] = Some(result);
                done(index);
            });
        }
    });
    slots
        .into_inner()
        .expect("no worker panics while holding the lock")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed by a worker"))
        .collect()
}

/// Instantiates the backend a configuration selects.
///
/// [`BackendChoice::Process`] builds a pool of `config.threads`
/// *persistent* local workers (each serving many shard jobs over its
/// lifetime) rather than the legacy one-subprocess-per-job
/// [`crate::ProcessBackend`], which remains available for explicit use;
/// [`BackendChoice::Fleet`] additionally honours the `CRP_FLEET`
/// manifest, mixing local subprocess workers with remote TCP workers.
///
/// # Errors
///
/// [`SimError::Config`] for an invalid `CRP_FLEET` manifest and
/// [`SimError::Backend`] when a needed worker binary cannot be located.
pub(crate) fn backend_for(config: &RunnerConfig) -> Result<Box<dyn ShardBackend>, SimError> {
    Ok(match config.backend {
        BackendChoice::Serial => Box::new(SerialBackend),
        BackendChoice::Thread => Box::new(ThreadBackend::new(config.threads)),
        BackendChoice::Process => Box::new(FleetBackend::local(config.threads)?),
        BackendChoice::Fleet => Box::new(FleetBackend::from_config(config)?),
    })
}

/// Executes `jobs` on `backend` and merges each cell's accumulators in
/// shard order, yielding one [`TrialStats`] per cell (cells indexed
/// `0..num_cells`; jobs of a cell must be contiguous and shard-ordered).
///
/// This is the single driver under [`crate::run_batch`],
/// [`crate::Simulation::run`] and the [`crate::SweepMatrix`] scheduler: the
/// merge happens here, in plan order, so the result is a pure function of
/// the jobs — never of the backend or its scheduling.
pub(crate) fn execute_and_merge(
    backend: &dyn ShardBackend,
    jobs: &[ShardJob<'_>],
    num_cells: usize,
    done: JobDoneFn<'_>,
) -> Result<Vec<TrialStats>, SimError> {
    debug_assert!(
        jobs.windows(2).all(|w| {
            w[0].cell < w[1].cell || (w[0].cell == w[1].cell && w[0].shard + 1 == w[1].shard)
        }),
        "jobs must be grouped by cell and shard-ordered within each cell"
    );
    let accumulators = backend.execute(jobs, done)?;
    let mut merged: Vec<TrialAccumulator> =
        (0..num_cells).map(|_| TrialAccumulator::new()).collect();
    for (job, accumulator) in jobs.iter().zip(&accumulators) {
        merged[job.cell].merge(accumulator);
    }
    Ok(merged.iter().map(TrialAccumulator::finalize).collect())
}
