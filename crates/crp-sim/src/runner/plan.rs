//! Deterministic batch planning: [`RunnerConfig`], [`BackendChoice`],
//! [`ShardPlan`] and the progress/outcome value types.
//!
//! Everything here is a pure function of the configuration — never of the
//! thread count, the backend, or scheduling — which is what makes the
//! statistics of a batch bit-identical however it is executed.

use std::str::FromStr;

use crp_channel::Execution;
use crp_fleet::{ChaosPlan, FleetManifest};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::runner::kernel::{default_kernel, KernelChoice};
use crate::SimError;

/// Outcome of a single Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Whether contention was resolved within the round budget.
    pub resolved: bool,
    /// Rounds elapsed (equals the budget when unresolved).
    pub rounds: usize,
}

impl From<Execution> for TrialOutcome {
    fn from(execution: Execution) -> Self {
        TrialOutcome {
            resolved: execution.resolved,
            rounds: execution.rounds,
        }
    }
}

/// Which [`crate::ShardBackend`] executes the shards of a batch or sweep.
///
/// The choice affects wall-clock time and process topology only, never the
/// statistics: shard plans, RNG streams and merge order are all
/// backend-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Run every shard inline on the calling thread.
    Serial,
    /// Scoped worker threads stealing shards from a shared queue (the
    /// default).
    #[default]
    Thread,
    /// A pool of persistent local `crp_experiments worker` subprocesses,
    /// each serving many shard jobs over its lifetime.  (The legacy
    /// one-subprocess-per-job [`crate::ProcessBackend`] remains available
    /// for explicit use and spawn-overhead comparisons.)
    Process,
    /// The fleet dispatcher: local worker subprocesses and/or remote
    /// `host:port` workers from the `CRP_FLEET` manifest (or the
    /// `--fleet` CLI flag), with straggler retry and dead-worker
    /// re-dispatch.
    Fleet,
}

impl BackendChoice {
    /// The stable CLI names, in declaration order.
    pub const NAMES: [&'static str; 4] = ["serial", "thread", "process", "fleet"];
}

impl FromStr for BackendChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(BackendChoice::Serial),
            "thread" => Ok(BackendChoice::Thread),
            "process" => Ok(BackendChoice::Process),
            "fleet" => Ok(BackendChoice::Fleet),
            other => Err(format!(
                "unknown backend {other:?}; expected one of: {}",
                Self::NAMES.join(", ")
            )),
        }
    }
}

/// Configuration of a batch of trials.
///
/// (`RunnerConfig` is `Clone` but deliberately not `Copy`: the optional
/// [`FleetManifest`] makes per-run fleet pools a first-class config
/// field instead of an environment-variable side channel.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `i` of the batch draws from a `ChaCha8Rng` stream
    /// derived from `(base_seed, i)` (see [`ShardPlan::trial_rng`]).
    pub base_seed: u64,
    /// Number of worker threads or processes (1 = run inline).  The
    /// statistics do not depend on this value, only the wall-clock time
    /// does.  Defaults to the `CRP_THREADS` environment variable when set
    /// to a positive integer, otherwise to the machine's available
    /// parallelism; explicit calls to [`RunnerConfig::threads`]-setting
    /// builders (and CLI flags built on them) win over the environment.
    pub threads: usize,
    /// Which shard backend executes the batch.
    pub backend: BackendChoice,
    /// The worker pool a [`BackendChoice::Fleet`] run dispatches to.
    /// `None` falls back to the `CRP_FLEET` environment variable (and
    /// then to `threads` local subprocess workers) — so library callers
    /// can pin a per-run pool without touching the process environment.
    /// The CLI's `--fleet` flag populates this field.
    pub fleet: Option<FleetManifest>,
    /// A declarative fault schedule applied to the worker pool of a
    /// [`BackendChoice::Fleet`] run: each event extends one local
    /// worker's spawn environment with the corresponding legacy
    /// `CRP_FLEET_*_AFTER` knob.  `None` (and the empty plan) injects
    /// nothing.  Because the dispatcher re-dispatches the jobs of dead,
    /// garbled or wedged workers and shard statistics are deterministic
    /// functions of their specs, a chaos run that completes stays
    /// bit-identical to the serial backend.  The CLI's `--chaos` flag
    /// populates this field.
    pub chaos: Option<ChaosPlan>,
    /// The `host:port` address (port 0 allowed) on which a
    /// [`BackendChoice::Fleet`] run listens for elastically joining
    /// workers (`crp_experiments worker --join host:port`).  `None`
    /// (the default) accepts no elastic joiners.  The CLI's
    /// `--accept-workers` flag populates this field.
    pub accept_workers: Option<String>,
    /// Which trial-kernel path executes shards: the batched
    /// struct-of-arrays fast paths where a protocol supports them
    /// ([`KernelChoice::Auto`], the default, and [`KernelChoice::Batched`]
    /// — identical selection, the scalar executor remains the universal
    /// fallback), or never ([`KernelChoice::Scalar`], for debugging and
    /// equivalence baselines).  The choice affects wall-clock time only,
    /// never the statistics.  Defaults to the `CRP_KERNEL` environment
    /// variable when set to a valid choice; explicit builder calls and
    /// CLI flags win over the environment.
    pub kernel: KernelChoice,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            trials: 1000,
            base_seed: 0xC0FFEE,
            threads: default_threads(),
            backend: BackendChoice::default(),
            fleet: None,
            chaos: None,
            accept_workers: None,
            kernel: default_kernel(),
        }
    }
}

/// Strictly parses the `CRP_THREADS` worker-count override: `Ok(None)`
/// when unset, `Ok(Some(n))` for a positive integer, and a typed
/// [`SimError::Config`] naming the offending value otherwise.
///
/// [`RunnerConfig::default`] stays infallible (it warns once and falls
/// back to hardware parallelism); entry points that *can* fail — the CLI,
/// explicit callers — use this to refuse a misconfigured environment
/// instead of silently ignoring it.
///
/// # Errors
///
/// [`SimError::Config`] for a value that is not a positive integer.
pub fn env_worker_threads() -> Result<Option<usize>, SimError> {
    let Ok(value) = std::env::var("CRP_THREADS") else {
        return Ok(None);
    };
    match value.trim().parse::<usize>() {
        Ok(threads) if threads >= 1 => Ok(Some(threads)),
        _ => Err(SimError::Config {
            var: "CRP_THREADS".to_string(),
            value,
            what: "expected a positive integer worker count".to_string(),
        }),
    }
}

/// The default worker count: `CRP_THREADS` when set to a positive integer
/// (so CI and benches can pin parallelism without code changes), otherwise
/// the available hardware parallelism.  An invalid override is reported
/// on stderr (once) and ignored here; strict callers use
/// [`env_worker_threads`].
fn default_threads() -> usize {
    match env_worker_threads() {
        Ok(Some(threads)) => return threads,
        Ok(None) => {}
        Err(err) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("warning: {err}; using hardware parallelism"));
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

impl RunnerConfig {
    /// Convenience constructor for a given trial count with the default
    /// seed and thread count.
    pub fn with_trials(trials: usize) -> Self {
        Self {
            trials,
            ..Self::default()
        }
    }

    /// Returns a copy with a different base seed.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Returns a copy pinned to a single thread (useful in tests).
    pub fn single_threaded(mut self) -> Self {
        self.threads = 1;
        self
    }

    /// Returns a copy with an explicit worker count (wins over the
    /// `CRP_THREADS` default).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy selecting a different shard backend.
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Returns a copy pinned to a fleet manifest (and therefore the
    /// fleet backend) — the typed equivalent of the `CRP_FLEET`
    /// environment variable, which this field wins over.
    pub fn with_fleet(mut self, manifest: FleetManifest) -> Self {
        self.fleet = Some(manifest);
        self.backend = BackendChoice::Fleet;
        self
    }

    /// Returns a copy scheduling a [`ChaosPlan`] over the fleet pool (and
    /// therefore selecting the fleet backend, the only one whose workers
    /// can be sabotaged).
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self.backend = BackendChoice::Fleet;
        self
    }

    /// Returns a copy listening for elastically joining workers on
    /// `addr` during fleet runs (and therefore selecting the fleet
    /// backend, the only one workers can join mid-run).
    pub fn with_accept_workers(mut self, addr: impl Into<String>) -> Self {
        self.accept_workers = Some(addr.into());
        self.backend = BackendChoice::Fleet;
        self
    }

    /// Returns a copy selecting a trial-kernel path (wins over the
    /// `CRP_KERNEL` default).
    pub fn with_kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }
}

/// How a batch of trials is split into deterministic shards.
///
/// The plan is a function of the trial count alone — never of the thread
/// count — so the same configuration always yields the same shards, the
/// same per-trial RNG streams, and therefore bit-identical statistics no
/// matter how many threads execute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    trials: usize,
    shard_size: usize,
}

impl ShardPlan {
    /// Default number of trials per shard: small enough to load-balance
    /// across threads, large enough to amortise accumulator merging.
    pub const DEFAULT_SHARD_SIZE: usize = 256;

    /// Plans `trials` trials with the default shard size.
    pub fn new(trials: usize) -> Self {
        Self::with_shard_size(trials, Self::DEFAULT_SHARD_SIZE)
    }

    /// Plans `trials` trials in shards of at most `shard_size` (clamped to
    /// at least 1).
    pub fn with_shard_size(trials: usize, shard_size: usize) -> Self {
        Self {
            trials,
            shard_size: shard_size.max(1),
        }
    }

    /// Total number of trials planned.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The maximum shard size of the plan.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.trials.div_ceil(self.shard_size)
    }

    /// Number of trials in shard `shard` (the last shard may be short).
    pub fn shard_trials(&self, shard: usize) -> usize {
        let start = shard * self.shard_size;
        self.trials.saturating_sub(start).min(self.shard_size)
    }

    /// The global index of trial `offset` within shard `shard`.
    pub fn trial_index(&self, shard: usize, offset: usize) -> usize {
        shard * self.shard_size + offset
    }

    /// The deterministic RNG stream of one trial: a `ChaCha8Rng` whose
    /// 256-bit seed encodes `(base_seed, trial)` plus a fixed domain salt,
    /// so distinct trials get statistically independent streams.
    ///
    /// Seeding per *trial* rather than per shard is what lets batched
    /// kernels process many trials of a shard in lockstep (round-major)
    /// while consuming each trial's draws in exactly the order the scalar
    /// trial-at-a-time path does — the two paths share the streams by
    /// construction, so their statistics are bit-identical.
    pub fn trial_rng(base_seed: u64, trial: usize) -> ChaCha8Rng {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&base_seed.to_le_bytes());
        seed[8..16].copy_from_slice(&(trial as u64).to_le_bytes());
        seed[16..32].copy_from_slice(b"crp-trial-stream");
        ChaCha8Rng::from_seed(seed)
    }
}

/// Progress of a sharded batch, reported once per completed shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchProgress {
    /// Shards finished so far.
    pub completed_shards: usize,
    /// Total shards in the plan.
    pub total_shards: usize,
    /// Trials finished so far.
    pub completed_trials: usize,
    /// Total trials in the plan.
    pub total_trials: usize,
}

/// A shard-completion callback; see [`crate::run_batch_with_progress`].
pub type ProgressFn<'a> = &'a (dyn Fn(BatchProgress) + Sync);
