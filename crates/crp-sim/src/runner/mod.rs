//! The sharded Monte-Carlo trial runner, split into executor-agnostic
//! layers:
//!
//! * [`plan`] — deterministic batch planning: [`RunnerConfig`] (trials,
//!   seed, worker count, [`BackendChoice`], [`KernelChoice`]), the
//!   [`ShardPlan`] that splits a batch into fixed-size shards of trials
//!   with per-trial `ChaCha8Rng` streams derived from
//!   `(base_seed, trial_index)`, and the progress/outcome value types.
//! * [`backend`] — the object-safe [`ShardBackend`] trait over
//!   [`ShardJob`]s (one shard of one cell) plus the inline
//!   [`SerialBackend`], and the shared execute-and-merge driver.
//! * [`kernel`] — batched struct-of-arrays trial kernels
//!   ([`CellKernel`]): whole shards run in lockstep with monomorphized
//!   uniform/deterministic fast paths, memoized outcome thresholds and
//!   block-buffered RNG, bit-identical to the scalar path by shared
//!   per-trial streams.
//! * [`thread`] — [`ThreadBackend`]: scoped worker threads stealing jobs
//!   from a shared queue (the former hard-wired parallel path).
//! * [`process`] — [`ProcessBackend`]: `crp_experiments shard-worker`
//!   subprocesses fed a [`ShardSpec`] on stdin, answering with a
//!   serialised accumulator on stdout.
//! * [`fleet`] — [`FleetBackend`]: the same [`ShardSpec`] messages framed
//!   over long-lived `crp_experiments worker` processes (persistent local
//!   subprocess pools and/or remote TCP workers from the `CRP_FLEET`
//!   manifest), with straggler retry and dead-worker re-dispatch.
//!
//! Because the plan, the streams and the merge order are all independent
//! of scheduling *and of the backend*, the resulting [`TrialStats`] are
//! bit-identical for any thread count and any backend.
//!
//! Three closure-based entry points are provided: [`run_trials`] for
//! infallible trial closures, [`run_batch`] whose closures may fail with a
//! typed error, and [`run_batch_with_progress`] which additionally reports
//! per-shard completion.  Closure-based batches always execute in-process
//! (a raw closure cannot be shipped to a subprocess); registry-described
//! work — [`crate::Simulation`] and [`crate::SweepMatrix`] — runs on any
//! backend.

pub(crate) mod backend;
pub(crate) mod fleet;
pub(crate) mod kernel;
pub(crate) mod plan;
pub(crate) mod process;
pub(crate) mod thread;

use std::sync::Mutex;

use crp_info::SizeDistribution;
use crp_protocols::{try_run_cd_strategy, try_run_schedule, CdStrategy, NoCdSchedule};
use rand_chacha::ChaCha8Rng;

use crate::stats::TrialStats;
use crate::SimError;

pub use backend::{JobDoneFn, SerialBackend, ShardBackend, ShardJob, TrialFn};
pub use fleet::{env_fleet_dispatch, env_fleet_manifest, FleetBackend};
pub use kernel::{env_kernel_choice, KernelChoice};
pub use plan::{
    env_worker_threads, BackendChoice, BatchProgress, ProgressFn, RunnerConfig, ShardPlan,
    TrialOutcome,
};
pub use process::{run_shard_worker, run_shard_worker_with, ProcessBackend, ShardSpec};
pub use thread::ThreadBackend;

use backend::execute_and_merge;

/// The in-process backend a closure-based entry point uses.
///
/// # Errors
///
/// Returns [`SimError::Backend`] when the configuration selects an
/// out-of-process backend (process or fleet), which cannot execute raw
/// closures.
fn closure_backend(config: &RunnerConfig) -> Result<Box<dyn ShardBackend>, SimError> {
    match config.backend {
        BackendChoice::Serial => Ok(Box::new(SerialBackend)),
        BackendChoice::Thread => Ok(Box::new(ThreadBackend::new(config.threads))),
        BackendChoice::Process | BackendChoice::Fleet => Err(SimError::Backend {
            what: format!(
                "the {} backend cannot execute raw trial closures; run a \
                 registry-described Simulation or SweepMatrix instead",
                if config.backend == BackendChoice::Process {
                    "process"
                } else {
                    "fleet"
                }
            ),
        }),
    }
}

/// The shared engine under the closure-based entry points: plans the
/// batch, executes it as single-cell shard jobs on the configured
/// in-process backend, and merges in shard order.
fn run_shards<F>(
    config: &RunnerConfig,
    trial: F,
    progress: Option<ProgressFn<'_>>,
) -> Result<TrialStats, SimError>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync,
{
    let backend = closure_backend(config)?;
    let plan = ShardPlan::new(config.trials);
    let trial: TrialFn<'_> = &trial;
    let jobs: Vec<ShardJob<'_>> = (0..plan.num_shards())
        .map(|shard| ShardJob {
            cell: 0,
            shard,
            plan,
            base_seed: config.base_seed,
            trial,
            spec: None,
            kernel: None,
        })
        .collect();

    // Both counters advance under one lock, and the callback is invoked
    // while it is held: deliveries are serialised, the reported counters
    // are monotonic, and the last delivered callback always reports 100%.
    let completed: Mutex<(usize, usize)> = Mutex::new((0, 0));
    let report = |job_index: usize| {
        if let Some(callback) = progress {
            let mut done = completed.lock().expect("no panics while counting progress");
            done.0 += 1;
            done.1 += plan.shard_trials(job_index);
            callback(BatchProgress {
                completed_shards: done.0,
                total_shards: plan.num_shards(),
                completed_trials: done.1,
                total_trials: plan.trials(),
            });
        }
    };

    let stats = execute_and_merge(backend.as_ref(), &jobs, 1, &report)?;
    Ok(stats
        .into_iter()
        .next()
        .expect("execute_and_merge returns one TrialStats per cell"))
}

/// Runs `config.trials` independent trials of `trial`, which receives a
/// deterministically seeded RNG, and aggregates the outcomes.
///
/// The trial closure is infallible and always executes in-process (with
/// the serial backend when `config` selects it or a single thread,
/// otherwise the work-stealing thread backend), so no failure path is
/// reachable.
pub fn run_trials<F>(config: &RunnerConfig, trial: F) -> TrialStats
where
    F: Fn(&mut ChaCha8Rng) -> TrialOutcome + Sync,
{
    let config = match config.backend {
        BackendChoice::Process | BackendChoice::Fleet => {
            config.clone().with_backend(BackendChoice::Thread)
        }
        _ => config.clone(),
    };
    run_shards(&config, |rng| Ok(trial(rng)), None).expect("infallible trial closures cannot fail")
}

/// Fallible batch runner: like [`run_trials`], but a trial may return a
/// typed error, which aborts the batch.
///
/// This is the amortised execution entry point used by
/// [`crate::Simulation`]: protocols are constructed once by the caller and
/// shared (immutably) across every trial and worker thread.
///
/// # Errors
///
/// Returns the first [`SimError`] any trial produced.  Which trial's error
/// is reported is deterministic for a fixed configuration (the first
/// failing trial of the lowest-indexed failing shard).  Also fails with
/// [`SimError::Backend`] when `config` selects the process backend, which
/// cannot execute raw closures.
pub fn run_batch<F>(config: &RunnerConfig, trial: F) -> Result<TrialStats, SimError>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync,
{
    run_shards(config, trial, None)
}

/// Like [`run_batch`], but invokes `progress` after every completed shard
/// (from whichever worker thread finished it), for long sweeps that want a
/// live progress display.
///
/// # Errors
///
/// As [`run_batch`].
pub fn run_batch_with_progress<F>(
    config: &RunnerConfig,
    trial: F,
    progress: ProgressFn<'_>,
) -> Result<TrialStats, SimError>
where
    F: Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync,
{
    run_shards(config, trial, Some(progress))
}

/// Measures a uniform no-collision-detection schedule against a true size
/// distribution: each trial samples `k ~ truth` and runs the schedule for
/// at most `max_rounds` rounds.
///
/// Convenience wrapper over [`run_batch`]; new code should prefer the
/// [`crate::Simulation`] builder, which also validates the configuration
/// up front.
pub fn measure_schedule<S>(
    schedule: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: NoCdSchedule + Sync + ?Sized,
{
    run_batch(config, |rng| {
        let k = sample_contending_size(truth, rng);
        try_run_schedule(schedule, k, max_rounds, rng)
            .map(TrialOutcome::from)
            .map_err(SimError::from)
    })
    .expect("schedule measurement over a positive budget cannot fail")
}

/// Measures a uniform collision-detection strategy against a true size
/// distribution.
///
/// Convenience wrapper over [`run_batch`]; new code should prefer the
/// [`crate::Simulation`] builder.
pub fn measure_cd_strategy<S>(
    strategy: &S,
    truth: &SizeDistribution,
    max_rounds: usize,
    config: &RunnerConfig,
) -> TrialStats
where
    S: CdStrategy + Sync + ?Sized,
{
    run_batch(config, |rng| {
        let k = sample_contending_size(truth, rng);
        try_run_cd_strategy(strategy, k, max_rounds, rng)
            .map(TrialOutcome::from)
            .map_err(SimError::from)
    })
    .expect("strategy measurement over a positive budget cannot fail")
}

/// Samples a network size from `truth`, re-drawing (or clamping) so the
/// result is at least 2 — the paper assumes at least two participants,
/// since size 1 has no contention to resolve.
pub fn sample_contending_size(truth: &SizeDistribution, rng: &mut ChaCha8Rng) -> usize {
    for _ in 0..16 {
        let k = truth.sample(rng);
        if k >= 2 {
            return k;
        }
    }
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_protocols::{Decay, FixedProbability, Willard};
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn trial_results_are_independent_of_thread_count() {
        let truth = SizeDistribution::bimodal(1024, 30, 500, 0.8).unwrap();
        let decay = Decay::new(1024).unwrap();
        let serial = measure_schedule(
            &decay,
            &truth,
            10_000,
            &RunnerConfig::with_trials(200).seeded(7).single_threaded(),
        );
        let mut parallel_config = RunnerConfig::with_trials(200).seeded(7);
        parallel_config.threads = 4;
        let parallel = measure_schedule(&decay, &truth, 10_000, &parallel_config);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn sharded_stats_are_bit_identical_for_threads_1_2_and_8() {
        // The acceptance criterion of the sharded driver: same seed, same
        // trial count, any thread count -> the SAME TrialStats, field for
        // field, including every floating-point bit (PartialEq on f64).
        let truth = SizeDistribution::bimodal(2048, 40, 900, 0.8).unwrap();
        let decay = Decay::new(2048).unwrap();
        // 1000 trials spans multiple shards (shard size 256), so the merge
        // path is genuinely exercised.
        let run = |threads: usize| {
            let mut config = RunnerConfig::with_trials(1000).seeded(99);
            config.threads = threads;
            measure_schedule(&decay, &truth, 50_000, &config)
        };
        let single = run(1);
        let double = run(2);
        let eight = run(8);
        assert_eq!(single, double);
        assert_eq!(single, eight);
        assert_eq!(single.trials, 1000);
    }

    #[test]
    fn serial_backend_matches_the_thread_backend_on_closures() {
        let truth = SizeDistribution::geometric(512, 0.1).unwrap();
        let decay = Decay::new(512).unwrap();
        let serial_config = RunnerConfig::with_trials(600)
            .seeded(4)
            .with_backend(BackendChoice::Serial);
        let thread_config = RunnerConfig::with_trials(600)
            .seeded(4)
            .with_threads(4)
            .with_backend(BackendChoice::Thread);
        let serial = measure_schedule(&decay, &truth, 20_000, &serial_config);
        let threaded = measure_schedule(&decay, &truth, 20_000, &thread_config);
        assert_eq!(serial, threaded);
    }

    #[test]
    fn closure_batches_reject_the_process_backend_with_a_typed_error() {
        let config = RunnerConfig::with_trials(10)
            .seeded(0)
            .with_backend(BackendChoice::Process);
        let err = run_batch(&config, |_| {
            Ok(TrialOutcome {
                resolved: true,
                rounds: 1,
            })
        })
        .unwrap_err();
        assert!(matches!(err, SimError::Backend { .. }));
        // run_trials silently falls back to the in-process thread backend
        // instead of panicking.
        let stats = run_trials(&config, |_| TrialOutcome {
            resolved: true,
            rounds: 1,
        });
        assert_eq!(stats.trials, 10);
    }

    #[test]
    fn backend_choice_parses_its_cli_names() {
        for name in BackendChoice::NAMES {
            let parsed: BackendChoice = name.parse().unwrap();
            let expected = match name {
                "serial" => BackendChoice::Serial,
                "thread" => BackendChoice::Thread,
                "process" => BackendChoice::Process,
                _ => BackendChoice::Fleet,
            };
            assert_eq!(parsed, expected);
        }
        assert!("cluster".parse::<BackendChoice>().is_err());
    }

    #[test]
    fn shard_plan_is_a_function_of_the_trial_count_only() {
        let plan = ShardPlan::new(1000);
        assert_eq!(plan.trials(), 1000);
        assert_eq!(plan.num_shards(), 4);
        assert_eq!(plan.shard_trials(0), 256);
        assert_eq!(plan.shard_trials(3), 1000 - 3 * 256);
        assert_eq!(plan.shard_trials(4), 0);
        assert_eq!(ShardPlan::new(0).num_shards(), 0);
        assert_eq!(ShardPlan::new(1).num_shards(), 1);
        let custom = ShardPlan::with_shard_size(10, 0);
        assert_eq!(custom.num_shards(), 10, "shard size clamps to 1");
    }

    #[test]
    fn trial_rng_streams_differ_per_trial_and_seed() {
        use rand::RngCore;
        let mut a = ShardPlan::trial_rng(7, 0);
        let mut b = ShardPlan::trial_rng(7, 1);
        let mut c = ShardPlan::trial_rng(8, 0);
        let mut a2 = ShardPlan::trial_rng(7, 0);
        let first: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(first, (0..4).map(|_| a2.next_u64()).collect::<Vec<_>>());
        assert_ne!(first, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(first, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
        // Shard boundaries do not affect the streams: the same global
        // trial index maps to the same stream under any shard size.
        let plan_a = ShardPlan::with_shard_size(512, 256);
        let plan_b = ShardPlan::with_shard_size(512, 64);
        assert_eq!(plan_a.trial_index(1, 3), 259);
        assert_eq!(plan_b.trial_index(4, 3), 259);
    }

    #[test]
    fn crp_threads_env_overrides_the_default_worker_count() {
        // Concurrent tests may observe the variable while it is set; that
        // is harmless by design — the statistics never depend on the
        // worker count, only wall-clock time does.
        std::env::set_var("CRP_THREADS", "3");
        assert_eq!(RunnerConfig::default().threads, 3);
        // Explicit worker counts (the CLI flag path) win over the env.
        assert_eq!(RunnerConfig::default().with_threads(2).threads, 2);
        // Unparsable or zero values fall back to hardware parallelism in
        // the infallible default...
        std::env::set_var("CRP_THREADS", "zero");
        assert!(RunnerConfig::default().threads >= 1);
        // ...but the strict parser surfaces them as typed Config errors
        // naming the variable and the offending value.
        match env_worker_threads() {
            Err(SimError::Config { var, value, .. }) => {
                assert_eq!(var, "CRP_THREADS");
                assert_eq!(value, "zero");
            }
            other => panic!("expected SimError::Config, got {other:?}"),
        }
        std::env::set_var("CRP_THREADS", "0");
        assert!(RunnerConfig::default().threads >= 1);
        assert!(matches!(env_worker_threads(), Err(SimError::Config { .. })));
        std::env::set_var("CRP_THREADS", "3");
        assert_eq!(env_worker_threads().unwrap(), Some(3));
        std::env::remove_var("CRP_THREADS");
        assert_eq!(env_worker_threads().unwrap(), None);
    }

    #[test]
    fn crp_kernel_env_overrides_the_default_kernel_choice() {
        // Concurrent tests may observe the variable while it is set; that
        // is harmless by design — kernels are bit-identical to the scalar
        // path, so the statistics never depend on this choice.
        std::env::set_var("CRP_KERNEL", "scalar");
        assert_eq!(RunnerConfig::default().kernel, KernelChoice::Scalar);
        // Explicit choices (the CLI flag path) win over the environment.
        assert_eq!(
            RunnerConfig::default()
                .with_kernel(KernelChoice::Batched)
                .kernel,
            KernelChoice::Batched
        );
        // Invalid values fall back to Auto in the infallible default...
        std::env::set_var("CRP_KERNEL", "simd");
        assert_eq!(RunnerConfig::default().kernel, KernelChoice::Auto);
        // ...but the strict parser surfaces them as typed Config errors
        // naming the variable, the value, and the valid choices.
        match env_kernel_choice() {
            Err(SimError::Config { var, value, what }) => {
                assert_eq!(var, "CRP_KERNEL");
                assert_eq!(value, "simd");
                assert!(what.contains("auto, scalar, batched"), "{what}");
            }
            other => panic!("expected SimError::Config, got {other:?}"),
        }
        std::env::set_var("CRP_KERNEL", "batched");
        assert_eq!(env_kernel_choice().unwrap(), Some(KernelChoice::Batched));
        std::env::remove_var("CRP_KERNEL");
        assert_eq!(env_kernel_choice().unwrap(), None);
        assert_eq!(RunnerConfig::default().kernel, KernelChoice::Auto);
    }

    #[test]
    fn progress_callback_reports_every_shard() {
        let config = RunnerConfig::with_trials(1000).seeded(3).single_threaded();
        let calls = AtomicUsize::new(0);
        let last_trials = AtomicUsize::new(0);
        let stats = run_batch_with_progress(
            &config,
            |_| {
                Ok(TrialOutcome {
                    resolved: true,
                    rounds: 1,
                })
            },
            &|progress: BatchProgress| {
                calls.fetch_add(1, Ordering::Relaxed);
                last_trials.store(progress.completed_trials, Ordering::Relaxed);
                assert_eq!(progress.total_shards, ShardPlan::new(1000).num_shards());
                assert_eq!(progress.total_trials, 1000);
            },
        )
        .unwrap();
        assert_eq!(stats.trials, 1000);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            ShardPlan::new(1000).num_shards()
        );
        assert_eq!(last_trials.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn correct_estimate_beats_decay() {
        let n = 4096;
        let k = 300;
        let truth = SizeDistribution::point_mass(n, k).unwrap();
        let config = RunnerConfig::with_trials(300).seeded(11);
        let fixed = measure_schedule(&FixedProbability::new(k).unwrap(), &truth, 10_000, &config);
        let decay = measure_schedule(&Decay::new(n).unwrap(), &truth, 10_000, &config);
        assert!(fixed.success_rate() > 0.99);
        assert!(decay.success_rate() > 0.99);
        assert!(fixed.mean_rounds_overall() < decay.mean_rounds_overall());
    }

    #[test]
    fn cd_strategy_measurement_reports_constant_probability_success() {
        let n = 1 << 14;
        let truth = SizeDistribution::uniform_ranges(n).unwrap();
        let willard = Willard::new(n).unwrap();
        let config = RunnerConfig::with_trials(400).seeded(3);
        let stats = measure_cd_strategy(&willard, &truth, willard.worst_case_rounds(), &config);
        assert!(stats.success_rate() > 0.3, "rate {}", stats.success_rate());
        assert!(stats.mean_rounds_when_resolved() <= willard.worst_case_rounds() as f64);
    }

    #[test]
    fn run_batch_surfaces_trial_errors() {
        let config = RunnerConfig::with_trials(10).seeded(0).single_threaded();
        let result = run_batch(&config, |_| {
            Err(SimError::InvalidParameter {
                what: "forced failure".into(),
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn run_batch_matches_run_trials_for_infallible_closures() {
        let config = RunnerConfig::with_trials(50).seeded(13).single_threaded();
        let via_trials = run_trials(&config, |rng| TrialOutcome {
            resolved: true,
            rounds: 1 + (rng.gen::<u64>() % 5) as usize,
        });
        let via_batch = run_batch(&config, |rng| {
            Ok(TrialOutcome {
                resolved: true,
                rounds: 1 + (rng.gen::<u64>() % 5) as usize,
            })
        })
        .unwrap();
        assert_eq!(via_trials, via_batch);
    }

    #[test]
    fn sample_contending_size_never_returns_less_than_two() {
        let truth = SizeDistribution::uniform_sizes(64).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for _ in 0..100 {
            assert!(sample_contending_size(&truth, &mut rng) >= 2);
        }
    }

    #[test]
    fn runner_config_builders() {
        let config = RunnerConfig::with_trials(10).seeded(5).single_threaded();
        assert_eq!(config.trials, 10);
        assert_eq!(config.base_seed, 5);
        assert_eq!(config.threads, 1);
        assert_eq!(config.backend, BackendChoice::Thread);
        let config = config.with_threads(0).with_backend(BackendChoice::Process);
        assert_eq!(config.threads, 1, "worker counts clamp to 1");
        assert_eq!(config.backend, BackendChoice::Process);
    }

    #[test]
    fn shard_spec_wire_round_trips() {
        use crate::runner::process::WirePopulation;
        use crp_info::CondensedDistribution;
        let prediction = CondensedDistribution::from_sizes(
            &SizeDistribution::bimodal(512, 16, 256, 0.9).unwrap(),
        );
        let spec = ShardSpec {
            protocol: crp_protocols::ProtocolSpec::new("sorted-guess-cycling")
                .universe(512)
                .prediction(prediction.clone())
                .participants(32)
                .advice_bits(2),
            population: WirePopulation::Sampled(SizeDistribution::geometric(512, 0.07).unwrap()),
            max_rounds: 4096,
        };
        let plan = ShardPlan::with_shard_size(700, 256);
        let wire = spec.to_wire(plan, 0xDEAD_BEEF, 2);
        let (parsed, parsed_plan, base_seed, shard) = ShardSpec::from_wire(&wire).unwrap();
        assert_eq!(parsed_plan, plan);
        assert_eq!(base_seed, 0xDEAD_BEEF);
        assert_eq!(shard, 2);
        assert_eq!(parsed.protocol.name(), "sorted-guess-cycling");
        assert_eq!(parsed.max_rounds, 4096);
        // The prediction and population masses survive bit-exactly.
        let params = parsed.protocol.params();
        assert_eq!(
            params.prediction.as_ref().unwrap().probabilities(),
            prediction.probabilities()
        );
        match (&parsed.population, &spec.population) {
            (WirePopulation::Sampled(a), WirePopulation::Sampled(b)) => {
                assert_eq!(a.masses(), b.masses());
            }
            _ => panic!("population kind changed across the wire"),
        }
    }

    #[test]
    fn shard_worker_runs_one_shard_bit_identically() {
        // Drive the worker entry point directly (no subprocess): its
        // accumulator must equal the one the in-process path computes for
        // the same (plan, seed, shard).
        use crate::runner::process::WirePopulation;
        let truth = SizeDistribution::bimodal(512, 16, 256, 0.9).unwrap();
        let spec = ShardSpec {
            protocol: crp_protocols::ProtocolSpec::new("decay").universe(512),
            population: WirePopulation::Sampled(truth.clone()),
            max_rounds: 50_000,
        };
        let plan = ShardPlan::new(600);
        let wire = spec.to_wire(plan, 42, 1);
        let response = run_shard_worker(&wire).unwrap();
        let worker_acc = crate::stats::TrialAccumulator::from_wire(&response).unwrap();

        let simulation = spec.to_simulation(plan.trials(), 42).unwrap();
        let trial = simulation.trial_fn();
        let local = ShardJob {
            cell: 0,
            shard: 1,
            plan,
            base_seed: 42,
            trial: &trial,
            spec: None,
            kernel: None,
        }
        .run_inline()
        .unwrap();
        assert_eq!(worker_acc, local);
    }

    #[test]
    fn shard_worker_rejects_malformed_input() {
        assert!(run_shard_worker("").is_err());
        assert!(run_shard_worker("crp-shard-spec v2\n").is_err());
        let spec = ShardSpec {
            protocol: crp_protocols::ProtocolSpec::new("decay").universe(64),
            population: crate::runner::process::WirePopulation::Fixed(4),
            max_rounds: 100,
        };
        let wire = spec.to_wire(ShardPlan::new(10), 1, 5);
        // Shard 5 is out of range for a 10-trial plan (1 shard).
        assert!(run_shard_worker(&wire).is_err());
    }
}
