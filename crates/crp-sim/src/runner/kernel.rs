//! Batched struct-of-arrays trial kernels.
//!
//! The scalar path executes a shard trial-at-a-time: each trial walks its
//! rounds through `dyn`-dispatched protocol calls with two `powf`s and a
//! fresh RNG draw per round.  A [`CellKernel`] instead runs *all* trials
//! of a shard in lockstep over flat per-trial state (participant counts,
//! round counters, outcome flags in `Vec`s), with monomorphized fast paths
//! for the hot protocol families:
//!
//! * **Uniform policies** (the paper's §2 class) sample the round outcome
//!   category with one uniform draw classified branchlessly against
//!   cumulative probabilities that are memoized per `(p, k)` — the two
//!   `powf`s are paid once per distinct pair instead of every round — and
//!   the draw itself comes from a per-trial block-refilled buffer
//!   ([`DrawBuffer`]).  No-CD policies are additionally queried once per
//!   *shard* per round (their history is always empty), and constant-rate
//!   policies ([`crp_protocols::UniformPolicy::constant_probability`])
//!   skip per-round dispatch entirely.
//! * **Deterministic per-node protocols** (the §3 advice schedules, gated
//!   by [`crp_protocols::NodeFactory::deterministic`]) never read the RNG,
//!   so the kernel executes once per distinct participant set and
//!   replicates the outcome across trials.
//!
//! Everything else falls back to the scalar executor — every registry
//! protocol still runs under every [`KernelChoice`].
//!
//! **Bit-identity is the non-negotiable contract.**  Both paths consume
//! the same per-trial RNG streams ([`ShardPlan::trial_rng`]) in the same
//! order: a uniform trial draws exactly one `f64` per round with
//! `p ∈ (0, 1)` and none otherwise, and deterministic per-node trials
//! never draw (beyond population sampling).  The kernels therefore produce
//! the same [`TrialAccumulator`] the scalar path does, bit for bit —
//! enforced by the `kernel_equivalence` and `backend_equivalence` tests.

use std::collections::HashMap;
use std::str::FromStr;

use crp_channel::{
    classify_uniform_draw, uniform_outcome_thresholds, CollisionHistory, ParticipantId,
    RoundOutcome,
};
use crp_info::SizeDistribution;
use crp_protocols::{try_run_protocol_with, Behavior, Protocol, UniformPolicy};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::runner::plan::ShardPlan;
use crate::runner::sample_contending_size;
use crate::stats::TrialAccumulator;
use crate::SimError;

/// Which trial-kernel path executes shards.
///
/// The choice affects wall-clock time only: kernels are bit-identical to
/// the scalar executor, so [`KernelChoice::Auto`] is the safe default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Use a batched kernel where the protocol supports one, the scalar
    /// executor otherwise (the default).
    #[default]
    Auto,
    /// Always use the scalar trial-at-a-time executor (debugging and
    /// equivalence baselines).
    Scalar,
    /// Prefer the batched kernels.  Selection is identical to
    /// [`KernelChoice::Auto`] — the scalar executor remains the universal
    /// fallback for protocols without a fast path — but the intent is
    /// explicit in configs and CSV-diff smoke jobs.
    Batched,
}

impl KernelChoice {
    /// The stable CLI names, in declaration order.
    pub const NAMES: [&'static str; 3] = ["auto", "scalar", "batched"];
}

impl FromStr for KernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(KernelChoice::Auto),
            "scalar" => Ok(KernelChoice::Scalar),
            "batched" => Ok(KernelChoice::Batched),
            other => Err(format!(
                "unknown kernel {other:?}; expected one of: {}",
                Self::NAMES.join(", ")
            )),
        }
    }
}

/// Strictly parses the `CRP_KERNEL` override: `Ok(None)` when unset,
/// `Ok(Some(choice))` for a valid name, and a typed [`SimError::Config`]
/// listing the valid choices otherwise.
///
/// [`crate::RunnerConfig::default`] stays infallible (it warns once and
/// falls back to [`KernelChoice::Auto`]); entry points that *can* fail —
/// the CLI, explicit callers — use this to refuse a misconfigured
/// environment instead of silently ignoring it, the same convention as
/// `CRP_THREADS` and `CRP_FLEET`.
///
/// # Errors
///
/// [`SimError::Config`] for a value that is not a valid kernel name.
pub fn env_kernel_choice() -> Result<Option<KernelChoice>, SimError> {
    let Ok(value) = std::env::var("CRP_KERNEL") else {
        return Ok(None);
    };
    match value.trim().parse::<KernelChoice>() {
        Ok(choice) => Ok(Some(choice)),
        Err(what) => Err(SimError::Config {
            var: "CRP_KERNEL".to_string(),
            value,
            what,
        }),
    }
}

/// The default kernel choice: `CRP_KERNEL` when set to a valid name (so
/// CI smoke jobs can force a path without code changes), otherwise
/// [`KernelChoice::Auto`].  An invalid override is reported on stderr
/// (once) and ignored here; strict callers use [`env_kernel_choice`].
pub(crate) fn default_kernel() -> KernelChoice {
    match env_kernel_choice() {
        Ok(Some(choice)) => choice,
        Ok(None) => KernelChoice::default(),
        Err(err) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("warning: {err}; using the auto kernel"));
            KernelChoice::default()
        }
    }
}

/// How a kernel chooses each trial's participant population (a borrowed
/// mirror of the simulation's population).
pub(crate) enum KernelPopulation<'a> {
    /// A fixed participant count.
    Fixed(usize),
    /// An explicit participant-id placement.
    Placed(&'a [ParticipantId]),
    /// The count is sampled from this ground truth each trial (consuming
    /// the trial's RNG stream exactly as the scalar path does).
    Sampled(&'a SizeDistribution),
}

/// The monomorphized fast path a cell dispatches to.
enum KernelKind<'a> {
    /// A uniform policy, run round-major over all trials of the shard.
    Uniform {
        policy: &'a dyn UniformPolicy,
        /// Whether the channel feeds collision history back (per-trial
        /// histories and per-trial policy queries; no-CD policies share
        /// one query per round).
        collision_detection: bool,
        /// The policy's constant per-round probability, when it has one.
        constant: Option<f64>,
    },
    /// A deterministic per-node protocol: executed once per distinct
    /// participant set, outcome replicated.
    Deterministic { protocol: &'a dyn Protocol },
}

/// A batched trial kernel for one cell, built once per cell and shared by
/// every shard job (and worker thread) of that cell.
pub struct CellKernel<'a> {
    kind: KernelKind<'a>,
    population: KernelPopulation<'a>,
    max_rounds: usize,
}

impl<'a> CellKernel<'a> {
    /// Selects the fast path for a cell, or `None` when `choice` is
    /// [`KernelChoice::Scalar`] or the protocol only runs on the scalar
    /// executor (randomized per-node protocols).
    pub(crate) fn select(
        choice: KernelChoice,
        protocol: &'a dyn Protocol,
        population: KernelPopulation<'a>,
        max_rounds: usize,
    ) -> Option<Self> {
        if choice == KernelChoice::Scalar {
            return None;
        }
        let kind = match protocol.behavior() {
            Behavior::Uniform(policy) => KernelKind::Uniform {
                policy,
                collision_detection: protocol.kind().channel_mode().has_collision_detection(),
                constant: policy.constant_probability(),
            },
            Behavior::PerNode(factory) if factory.deterministic() => {
                KernelKind::Deterministic { protocol }
            }
            Behavior::PerNode(_) => return None,
        };
        Some(Self {
            kind,
            population,
            max_rounds,
        })
    }

    /// A short stable name of the selected fast path, for diagnostics.
    pub fn name(&self) -> &'static str {
        match &self.kind {
            KernelKind::Uniform {
                collision_detection: false,
                constant: Some(_),
                ..
            } => "uniform-constant",
            KernelKind::Uniform {
                collision_detection: false,
                ..
            } => "uniform-no-cd",
            KernelKind::Uniform { .. } => "uniform-cd",
            KernelKind::Deterministic { .. } => "deterministic",
        }
    }

    /// Runs one shard through the kernel: all of the shard's trials in
    /// lockstep, folded into a fresh accumulator in trial order (the
    /// fold order of the scalar path).
    ///
    /// # Errors
    ///
    /// Returns the [`SimError`] a failing trial would produce on the
    /// scalar path (e.g. a policy emitting a probability outside
    /// `[0, 1]`, or a factory rejecting a sampled participant set).
    pub(crate) fn run_shard(
        &self,
        plan: ShardPlan,
        base_seed: u64,
        shard: usize,
    ) -> Result<TrialAccumulator, SimError> {
        let trials = plan.shard_trials(shard);
        let mut state = ShardState::new(self, plan, base_seed, shard, trials);
        match &self.kind {
            KernelKind::Uniform {
                policy,
                collision_detection,
                constant,
            } => {
                if *collision_detection {
                    self.run_uniform_cd(*policy, &mut state)?;
                } else {
                    self.run_uniform_no_cd(*policy, *constant, &mut state)?;
                }
            }
            KernelKind::Deterministic { protocol } => {
                self.run_deterministic(*protocol, &mut state)?;
            }
        }
        let mut accumulator = TrialAccumulator::new();
        for t in 0..trials {
            accumulator.record(state.resolved[t], state.rounds[t] as u64);
        }
        Ok(accumulator)
    }

    /// The uniform no-CD fast path: the policy sees an empty history in
    /// every trial, so each round costs one policy query for the whole
    /// shard (none at all for constant-rate policies), one threshold
    /// memo lookup per distinct `k`, and one buffered draw per active
    /// trial.
    fn run_uniform_no_cd(
        &self,
        policy: &dyn UniformPolicy,
        constant: Option<f64>,
        state: &mut ShardState,
    ) -> Result<(), SimError> {
        let empty = CollisionHistory::new();
        let mut thresholds = ThresholdMemo::new();
        let mut active: Vec<usize> = (0..state.rounds.len()).collect();
        for round in 1..=self.max_rounds {
            if active.is_empty() {
                return Ok(());
            }
            let p = match constant.or_else(|| policy.probability(round, &empty)) {
                Some(p) => p,
                None => {
                    // Schedule exhausted: every still-active trial ends
                    // unresolved after `round - 1` rounds.
                    for &t in &active {
                        state.rounds[t] = round - 1;
                    }
                    return Ok(());
                }
            };
            validate_probability(p, round)?;
            if p <= 0.0 {
                // Guaranteed silence; the scalar path consumes no draw.
                continue;
            }
            let mut i = 0;
            while i < active.len() {
                let t = active[i];
                let outcome = if p >= 1.0 {
                    RoundOutcome::from_transmitter_count(state.k[t])
                } else {
                    let (silence, success) = thresholds.get(state.k[t], p);
                    classify_uniform_draw(state.draws[t].next_f64(), silence, success)
                };
                if outcome.is_success() {
                    state.resolved[t] = true;
                    state.rounds[t] = round;
                    active.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        for &t in &active {
            state.rounds[t] = self.max_rounds;
        }
        Ok(())
    }

    /// The uniform CD fast path: histories diverge per trial, so the
    /// policy is queried per active trial per round, but the threshold
    /// memo still eliminates the per-round `powf`s and draws stay
    /// buffered.
    fn run_uniform_cd(
        &self,
        policy: &dyn UniformPolicy,
        state: &mut ShardState,
    ) -> Result<(), SimError> {
        let mut thresholds = ThresholdMemo::new();
        let mut histories: Vec<CollisionHistory> = (0..state.rounds.len())
            .map(|_| CollisionHistory::new())
            .collect();
        let mut active: Vec<usize> = (0..state.rounds.len()).collect();
        for round in 1..=self.max_rounds {
            if active.is_empty() {
                return Ok(());
            }
            let mut i = 0;
            while i < active.len() {
                let t = active[i];
                let Some(p) = policy.probability(round, &histories[t]) else {
                    state.rounds[t] = round - 1;
                    active.swap_remove(i);
                    continue;
                };
                validate_probability(p, round)?;
                let outcome = if p <= 0.0 {
                    RoundOutcome::Silence
                } else if p >= 1.0 {
                    RoundOutcome::from_transmitter_count(state.k[t])
                } else {
                    let (silence, success) = thresholds.get(state.k[t], p);
                    classify_uniform_draw(state.draws[t].next_f64(), silence, success)
                };
                if outcome.is_success() {
                    state.resolved[t] = true;
                    state.rounds[t] = round;
                    active.swap_remove(i);
                } else {
                    histories[t].push(outcome == RoundOutcome::Collision);
                    i += 1;
                }
            }
        }
        for &t in &active {
            state.rounds[t] = self.max_rounds;
        }
        Ok(())
    }

    /// The deterministic per-node fast path: nodes never read the RNG, so
    /// the execution is a pure function of the participant set — run it
    /// once per distinct `k` (or once per shard for fixed populations)
    /// and replicate.  Trials are visited in index order so a failing
    /// participant set surfaces the same trial's error as the scalar
    /// path.
    fn run_deterministic(
        &self,
        protocol: &dyn Protocol,
        state: &mut ShardState,
    ) -> Result<(), SimError> {
        let mut memo: HashMap<usize, (bool, usize)> = HashMap::new();
        for t in 0..state.rounds.len() {
            let k = state.k[t];
            let (resolved, rounds) = match memo.get(&k) {
                Some(&outcome) => outcome,
                None => {
                    let execution = match &self.population {
                        KernelPopulation::Placed(ids) => try_run_protocol_with(
                            protocol,
                            ids,
                            self.max_rounds,
                            state.draws[t].rng_mut(),
                        ),
                        _ => {
                            let ids: Vec<ParticipantId> = (0..k).map(ParticipantId).collect();
                            try_run_protocol_with(
                                protocol,
                                &ids,
                                self.max_rounds,
                                state.draws[t].rng_mut(),
                            )
                        }
                    }
                    .map_err(SimError::from)?;
                    let outcome = (execution.resolved, execution.rounds);
                    memo.insert(k, outcome);
                    outcome
                }
            };
            state.resolved[t] = resolved;
            state.rounds[t] = rounds;
        }
        Ok(())
    }
}

/// Mirrors the scalar executor's probability validation bit for bit,
/// including the error conversion chain (`ChannelError` →
/// `ProtocolError` → `SimError`), so a misbehaving policy fails with the
/// same typed error under either path.
fn validate_probability(p: f64, round: usize) -> Result<(), SimError> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        let channel = crp_channel::ChannelError::InvalidConfiguration {
            what: format!("transmission probability {p} outside [0, 1] in round {round}"),
        };
        Err(SimError::from(
            crp_protocols::ProtocolError::InvalidParameter {
                what: channel.to_string(),
            },
        ))
    }
}

/// The struct-of-arrays per-shard state: one slot per trial, indexed by
/// the trial's offset within the shard.
struct ShardState {
    /// Per-trial participant count.
    k: Vec<usize>,
    /// Per-trial rounds elapsed (the budget when unresolved).
    rounds: Vec<usize>,
    /// Per-trial resolution flag.
    resolved: Vec<bool>,
    /// Per-trial buffered RNG streams.
    draws: Vec<DrawBuffer>,
}

impl ShardState {
    /// Seeds every trial's stream and samples its population up front —
    /// in trial order, so each stream is consumed exactly as the scalar
    /// path consumes it (population draws first, outcome draws after).
    fn new(
        kernel: &CellKernel<'_>,
        plan: ShardPlan,
        base_seed: u64,
        shard: usize,
        trials: usize,
    ) -> Self {
        let mut k = Vec::with_capacity(trials);
        let mut draws = Vec::with_capacity(trials);
        for offset in 0..trials {
            let mut rng = ShardPlan::trial_rng(base_seed, plan.trial_index(shard, offset));
            k.push(match &kernel.population {
                KernelPopulation::Fixed(count) => *count,
                KernelPopulation::Placed(ids) => ids.len(),
                KernelPopulation::Sampled(truth) => sample_contending_size(truth, &mut rng),
            });
            draws.push(DrawBuffer::new(rng));
        }
        Self {
            k,
            rounds: vec![0; trials],
            resolved: vec![false; trials],
            draws,
        }
    }
}

/// Memoizes [`uniform_outcome_thresholds`] per `(p, k)` — probabilities
/// keyed by their IEEE-754 bits, so distinct-but-equal floats share an
/// entry and the two `powf`s are paid once per pair per shard.
struct ThresholdMemo {
    memo: HashMap<(u64, usize), (f64, f64)>,
}

impl ThresholdMemo {
    fn new() -> Self {
        Self {
            memo: HashMap::new(),
        }
    }

    fn get(&mut self, k: usize, p: f64) -> (f64, f64) {
        *self
            .memo
            .entry((p.to_bits(), k))
            .or_insert_with(|| uniform_outcome_thresholds(k, p))
    }
}

/// Draws per trial are 8 `f64`s ahead of demand: large enough to amortise
/// refills over typical resolution times, small enough that per-trial
/// buffers stay cache-resident across a 256-trial shard.
const DRAW_BLOCK: usize = 8;

/// A per-trial RNG stream with block-refilled `f64` draws.
///
/// Refilling reads the underlying `ChaCha8Rng` with the same sequence of
/// `gen::<f64>()` calls the scalar path makes one at a time, so buffered
/// and unbuffered consumers observe identical draws; over-draw past the
/// trial's end is harmless because the stream is private to the trial.
struct DrawBuffer {
    rng: ChaCha8Rng,
    buffer: [f64; DRAW_BLOCK],
    next: usize,
}

impl DrawBuffer {
    fn new(rng: ChaCha8Rng) -> Self {
        Self {
            rng,
            buffer: [0.0; DRAW_BLOCK],
            next: DRAW_BLOCK,
        }
    }

    /// The next `f64` draw of the trial's stream.
    fn next_f64(&mut self) -> f64 {
        if self.next == DRAW_BLOCK {
            for slot in &mut self.buffer {
                *slot = self.rng.gen();
            }
            self.next = 0;
        }
        let value = self.buffer[self.next];
        self.next += 1;
        value
    }

    /// Direct access to the underlying stream, for paths that must not
    /// buffer (deterministic executions hand the RNG to the scalar
    /// executor).  Only valid before any buffered draw was taken.
    fn rng_mut(&mut self) -> &mut ChaCha8Rng {
        debug_assert_eq!(self.next, DRAW_BLOCK, "stream already buffered");
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn kernel_choice_parses_its_cli_names() {
        for name in KernelChoice::NAMES {
            let parsed: KernelChoice = name.parse().unwrap();
            let expected = match name {
                "auto" => KernelChoice::Auto,
                "scalar" => KernelChoice::Scalar,
                _ => KernelChoice::Batched,
            };
            assert_eq!(parsed, expected);
        }
        let err = "vectorized".parse::<KernelChoice>().unwrap_err();
        assert!(err.contains("auto, scalar, batched"), "{err}");
    }

    #[test]
    fn kernel_selection_matches_the_protocol_family() {
        let expectations = [
            ("fixed-probability", Some("uniform-constant")),
            ("decay", Some("uniform-no-cd")),
            ("willard", Some("uniform-cd")),
            ("det-advice-no-cd", Some("deterministic")),
        ];
        for (name, expected) in expectations {
            let protocol = crp_protocols::ProtocolSpec::new(name)
                .universe(256)
                .participants(16)
                .advice_bits(2)
                .build()
                .unwrap();
            let kernel = CellKernel::select(
                KernelChoice::Auto,
                protocol.as_ref(),
                KernelPopulation::Fixed(16),
                64,
            );
            assert_eq!(kernel.as_ref().map(CellKernel::name), expected, "{name}");
            // Scalar disables every kernel.
            assert!(CellKernel::select(
                KernelChoice::Scalar,
                protocol.as_ref(),
                KernelPopulation::Fixed(16),
                64,
            )
            .is_none());
        }
    }

    #[test]
    fn buffered_draws_match_the_unbuffered_stream() {
        let seed = ChaCha8Rng::seed_from_u64(42);
        let mut direct = seed.clone();
        let mut buffered = DrawBuffer::new(seed);
        for _ in 0..(3 * DRAW_BLOCK + 1) {
            let expected: f64 = direct.gen();
            assert_eq!(expected.to_bits(), buffered.next_f64().to_bits());
        }
    }

    #[test]
    fn threshold_memo_matches_the_direct_computation() {
        let mut memo = ThresholdMemo::new();
        for k in [1usize, 2, 70, 1 << 20] {
            for p in [0.5, 0.125, 1.0 / 3.0] {
                assert_eq!(memo.get(k, p), uniform_outcome_thresholds(k, p));
                // Second lookup hits the memo and must agree.
                assert_eq!(memo.get(k, p), uniform_outcome_thresholds(k, p));
            }
        }
    }
}
