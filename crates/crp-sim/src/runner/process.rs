//! The multi-process shard backend and its wire protocol.
//!
//! [`ProcessBackend`] executes each [`ShardJob`] in a `crp_experiments
//! shard-worker` subprocess: the parent writes a [`ShardSpec`] (a fully
//! serialised description of the cell — protocol spec, population, round
//! budget — plus the job's plan coordinates) to the child's stdin, and the
//! child answers with a serialised [`TrialAccumulator`] on stdout.
//! Because the shard plan, the per-shard RNG streams and the merge order
//! are all decided by the parent, a worker only ever *computes one shard
//! accumulator*; the statistics are therefore bit-identical to the serial
//! and threaded backends (floats cross the process boundary as IEEE-754
//! bit patterns, never as decimal text).
//!
//! The wire format is a deliberately boring line-based text protocol (the
//! workspace is offline and vendors no serde); see [`ShardSpec::to_wire`].
//! One subprocess is spawned per shard job — fine for the shard sizes the
//! planner produces, and the stepping stone to the remote/fleet dispatch
//! the ROADMAP names as the next frontier.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use crp_fleet::BlobSet;
use crp_info::{CondensedDistribution, SizeDistribution};
use crp_protocols::ProtocolSpec;

use crate::runner::backend::{steal_jobs, JobDoneFn, ShardBackend, ShardJob};
use crate::runner::plan::ShardPlan;
use crate::simulation::Simulation;
use crate::stats::TrialAccumulator;
use crate::SimError;

/// How a cell chooses its per-trial participant population, in
/// serialisable form.
#[derive(Debug)]
pub(crate) enum WirePopulation {
    /// A fixed participant count.
    Fixed(usize),
    /// An explicit participant-id placement.
    Placed(Vec<usize>),
    /// The participant count is sampled from this ground truth each trial.
    Sampled(SizeDistribution),
}

/// A fully serialisable description of one cell's work: everything a
/// `shard-worker` subprocess needs to reconstruct the cell's
/// [`Simulation`] and execute any shard of it.
///
/// Obtained from a [`Simulation`] that was built from a registry
/// [`ProtocolSpec`] (cells built around custom protocol *objects* have no
/// serialisable description and cannot run on the process backend).
#[derive(Debug)]
pub struct ShardSpec {
    pub(crate) protocol: ProtocolSpec,
    pub(crate) population: WirePopulation,
    pub(crate) max_rounds: usize,
}

/// Encodes an `f64` as its IEEE-754 bit pattern in fixed-width hex.
fn f64_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

/// Decodes [`f64_hex`].
fn parse_f64_hex(token: &str) -> Result<f64, SimError> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|e| wire_error(format!("invalid float bits {token:?}: {e}")))
}

fn wire_error(what: impl Into<String>) -> SimError {
    SimError::Backend { what: what.into() }
}

fn parse_usize(token: &str, label: &str) -> Result<usize, SimError> {
    token
        .parse::<usize>()
        .map_err(|e| wire_error(format!("invalid {label} {token:?}: {e}")))
}

/// Appends the hex-encoded masses of a slice of probabilities.
fn push_masses(out: &mut String, masses: &[f64]) {
    for &mass in masses {
        out.push(' ');
        out.push_str(&f64_hex(mass));
    }
}

fn parse_masses(tokens: std::str::SplitAsciiWhitespace<'_>) -> Result<Vec<f64>, SimError> {
    tokens.map(parse_f64_hex).collect()
}

impl ShardSpec {
    /// A cell whose participant count is sampled from `truth` each trial.
    ///
    /// Public so codec round-trip tests (and external tooling building
    /// shard jobs) can construct specs directly; simulations obtain
    /// theirs internally.
    pub fn sampled(protocol: ProtocolSpec, truth: SizeDistribution, max_rounds: usize) -> Self {
        Self {
            protocol,
            population: WirePopulation::Sampled(truth),
            max_rounds,
        }
    }

    /// A cell with a fixed participant count.
    pub fn fixed(protocol: ProtocolSpec, participants: usize, max_rounds: usize) -> Self {
        Self {
            protocol,
            population: WirePopulation::Fixed(participants),
            max_rounds,
        }
    }

    /// A cell with an explicit participant-id placement.
    pub fn placed(protocol: ProtocolSpec, ids: Vec<usize>, max_rounds: usize) -> Self {
        Self {
            protocol,
            population: WirePopulation::Placed(ids),
            max_rounds,
        }
    }

    /// The cell's protocol spec.
    pub fn protocol(&self) -> &ProtocolSpec {
        &self.protocol
    }

    /// The population masses when the cell samples its participant count
    /// (`None` for fixed or placed populations) — exposed for bit-exact
    /// round-trip assertions.
    pub fn sampled_masses(&self) -> Option<&[f64]> {
        match &self.population {
            WirePopulation::Sampled(truth) => Some(truth.masses()),
            _ => None,
        }
    }

    /// Serialises this spec plus the coordinates of one shard job into the
    /// message a `shard-worker` subprocess consumes on stdin.
    pub fn to_wire(&self, plan: ShardPlan, base_seed: u64, shard: usize) -> String {
        let mut out = String::new();
        out.push_str("crp-shard-spec v1\n");
        out.push_str(&format!("protocol {}\n", self.protocol.name()));
        let params = self.protocol.params();
        out.push_str(&format!("universe {}\n", params.universe));
        out.push_str(&format!("advice-bits {}\n", params.advice_bits));
        match params.participants {
            Some(k) => out.push_str(&format!("participants {k}\n")),
            None => out.push_str("participants none\n"),
        }
        match params.estimate {
            Some(k) => out.push_str(&format!("estimate {k}\n")),
            None => out.push_str("estimate none\n"),
        }
        match &params.prediction {
            Some(prediction) => {
                out.push_str(&format!("prediction {}", prediction.max_size()));
                push_masses(&mut out, prediction.probabilities());
                out.push('\n');
            }
            None => out.push_str("prediction none\n"),
        }
        match &self.population {
            WirePopulation::Fixed(k) => out.push_str(&format!("population fixed {k}\n")),
            WirePopulation::Placed(ids) => {
                out.push_str("population placed");
                for id in ids {
                    out.push_str(&format!(" {id}"));
                }
                out.push('\n');
            }
            WirePopulation::Sampled(truth) => {
                out.push_str("population sampled");
                push_masses(&mut out, truth.masses());
                out.push('\n');
            }
        }
        out.push_str(&format!("max-rounds {}\n", self.max_rounds));
        out.push_str(&format!("trials {}\n", plan.trials()));
        out.push_str(&format!("shard-size {}\n", plan.shard_size()));
        out.push_str(&format!("base-seed {base_seed}\n"));
        out.push_str(&format!("shard {shard}\n"));
        out.push_str("end\n");
        out
    }

    /// Like [`ShardSpec::to_wire`], but with every masses section
    /// (sampled population, prediction) replaced by a `ref <hash>` line
    /// whose blob is registered in `blobs` — the scenario-by-hash form a
    /// protocol-v2 fleet worker accepts once it holds the blobs.
    /// Returns `None` when the spec has no masses to reference (the
    /// compact form would equal the inline form).
    ///
    /// The inline encoding remains the *canonical* one: job identity and
    /// cache keys hash the [`ShardSpec::to_wire`] bytes, so how a spec
    /// was shipped can never change what it is.
    pub fn to_wire_compact(
        &self,
        plan: ShardPlan,
        base_seed: u64,
        shard: usize,
        blobs: &mut BlobSet,
    ) -> Option<(String, Vec<String>)> {
        let prediction_blob = self
            .protocol
            .params()
            .prediction
            .as_ref()
            .map(|prediction| {
                let mut blob = format!("{}", prediction.max_size());
                push_masses(&mut blob, prediction.probabilities());
                blob
            });
        let population_blob = match &self.population {
            WirePopulation::Sampled(truth) => {
                let mut blob = "sampled".to_string();
                push_masses(&mut blob, truth.masses());
                Some(blob)
            }
            _ => None,
        };
        if prediction_blob.is_none() && population_blob.is_none() {
            return None;
        }
        let inline = self.to_wire(plan, base_seed, shard);
        let mut refs = Vec::new();
        let mut out = String::with_capacity(256);
        for line in inline.lines() {
            if line.starts_with("prediction ") && prediction_blob.is_some() {
                let hash = blobs.insert(prediction_blob.clone().expect("checked above"));
                out.push_str(&format!("prediction ref {hash}\n"));
                refs.push(hash);
            } else if line.starts_with("population sampled") && population_blob.is_some() {
                let hash = blobs.insert(population_blob.clone().expect("checked above"));
                out.push_str(&format!("population ref {hash}\n"));
                refs.push(hash);
            } else {
                out.push_str(line);
                out.push('\n');
            }
        }
        refs.dedup();
        Some((out, refs))
    }

    /// Parses the message produced by [`ShardSpec::to_wire`], returning the
    /// spec and the job coordinates `(plan, base_seed, shard)`.  Compact
    /// messages (with `ref <hash>` sections) are rejected here — use
    /// [`ShardSpec::from_wire_with`] with a blob resolver for those.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Backend`] describing the first malformed line.
    pub fn from_wire(input: &str) -> Result<(Self, ShardPlan, u64, usize), SimError> {
        Self::from_wire_with(input, &|_| None)
    }

    /// Parses an inline or compact shard-spec message, resolving
    /// `ref <hash>` sections (compact scenario-by-hash shipping) through
    /// `resolve` — a fleet worker passes a lookup into its
    /// [`crp_fleet::ScenarioStore`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Backend`] describing the first malformed line
    /// or an unresolvable blob reference.
    pub fn from_wire_with(
        input: &str,
        resolve: &dyn Fn(&str) -> Option<String>,
    ) -> Result<(Self, ShardPlan, u64, usize), SimError> {
        fn expect<'a>(lines: &mut std::str::Lines<'a>, label: &str) -> Result<&'a str, SimError> {
            let line = lines
                .next()
                .ok_or_else(|| wire_error(format!("missing {label} line")))?;
            line.strip_prefix(label)
                .map(str::trim_start)
                .ok_or_else(|| wire_error(format!("expected a {label} line, got {line:?}")))
        }

        let mut lines = input.lines();
        let header = lines
            .next()
            .ok_or_else(|| wire_error("empty shard-spec message"))?;
        if header != "crp-shard-spec v1" {
            return Err(wire_error(format!("unexpected spec header {header:?}")));
        }
        let lines = &mut lines;
        let name = expect(lines, "protocol")?.to_string();
        let universe = parse_usize(expect(lines, "universe")?, "universe")?;
        let advice_bits = parse_usize(expect(lines, "advice-bits")?, "advice-bits")?;
        let participants = match expect(lines, "participants")? {
            "none" => None,
            token => Some(parse_usize(token, "participants")?),
        };
        let estimate = match expect(lines, "estimate")? {
            "none" => None,
            token => Some(parse_usize(token, "estimate")?),
        };
        // A `ref <hash>` payload (compact scenario-by-hash shipping)
        // dereferences to the text an inline message would have carried.
        let deref = |payload: &str, label: &str| -> Result<Option<String>, SimError> {
            let Some(hash) = payload.strip_prefix("ref ") else {
                return Ok(None);
            };
            let hash = hash.trim();
            resolve(hash).map(Some).ok_or_else(|| {
                wire_error(format!(
                    "{label} references scenario blob {hash}, which this worker does not hold"
                ))
            })
        };
        let prediction = match expect(lines, "prediction")? {
            "none" => None,
            payload => {
                let resolved = deref(payload, "prediction")?;
                let payload = resolved.as_deref().unwrap_or(payload);
                let mut tokens = payload.split_ascii_whitespace();
                let max_size = parse_usize(
                    tokens
                        .next()
                        .ok_or_else(|| wire_error("prediction line is missing its max size"))?,
                    "prediction max size",
                )?;
                let masses = parse_masses(tokens)?;
                Some(
                    CondensedDistribution::from_range_masses_exact(masses, max_size)
                        .map_err(|e| wire_error(format!("invalid prediction masses: {e}")))?,
                )
            }
        };
        let population = {
            let payload = expect(lines, "population")?;
            let resolved = deref(payload, "population")?;
            let payload = resolved.as_deref().unwrap_or(payload);
            let mut tokens = payload.split_ascii_whitespace();
            match tokens.next() {
                Some("fixed") => WirePopulation::Fixed(parse_usize(
                    tokens
                        .next()
                        .ok_or_else(|| wire_error("population fixed is missing its count"))?,
                    "population count",
                )?),
                Some("placed") => WirePopulation::Placed(
                    tokens
                        .map(|t| parse_usize(t, "participant id"))
                        .collect::<Result<Vec<usize>, SimError>>()?,
                ),
                Some("sampled") => WirePopulation::Sampled(
                    SizeDistribution::from_masses_exact(parse_masses(tokens)?)
                        .map_err(|e| wire_error(format!("invalid population masses: {e}")))?,
                ),
                other => {
                    return Err(wire_error(format!("unknown population kind {other:?}")));
                }
            }
        };
        let max_rounds = parse_usize(expect(lines, "max-rounds")?, "max-rounds")?;
        let trials = parse_usize(expect(lines, "trials")?, "trials")?;
        let shard_size = parse_usize(expect(lines, "shard-size")?, "shard-size")?;
        let base_seed = expect(lines, "base-seed")?
            .parse::<u64>()
            .map_err(|e| wire_error(format!("invalid base seed: {e}")))?;
        let shard = parse_usize(expect(lines, "shard")?, "shard")?;
        if !expect(lines, "end")?.is_empty() {
            return Err(wire_error("trailing content after the end marker"));
        }

        let mut protocol = ProtocolSpec::new(name)
            .universe(universe)
            .advice_bits(advice_bits);
        if let Some(k) = participants {
            protocol = protocol.participants(k);
        }
        if let Some(k) = estimate {
            protocol = protocol.estimate(k);
        }
        if let Some(prediction) = prediction {
            protocol = protocol.prediction(prediction);
        }
        Ok((
            Self {
                protocol,
                population,
                max_rounds,
            },
            ShardPlan::with_shard_size(trials, shard_size),
            base_seed,
            shard,
        ))
    }

    /// Reconstructs the cell's validated [`Simulation`] (single-threaded —
    /// a worker only ever runs one shard inline).
    pub(crate) fn to_simulation(
        &self,
        trials: usize,
        base_seed: u64,
    ) -> Result<Simulation, SimError> {
        let mut builder = Simulation::builder()
            .protocol(self.protocol.clone())
            .max_rounds(self.max_rounds)
            .trials(trials)
            .seed(base_seed)
            .threads(1);
        builder = match &self.population {
            WirePopulation::Fixed(k) => builder.participants(*k),
            WirePopulation::Placed(ids) => builder.participant_ids(ids.clone()),
            WirePopulation::Sampled(truth) => builder.truth(truth.clone()),
        };
        builder.build()
    }
}

/// The entry point of the hidden `crp_experiments shard-worker`
/// subcommand: parses a [`ShardSpec`] message, executes the one shard it
/// names, and returns the serialised [`TrialAccumulator`] to write to
/// stdout.
///
/// # Errors
///
/// Returns [`SimError`] for malformed input or a failing trial; the worker
/// process reports it on stderr and exits nonzero.
pub fn run_shard_worker(input: &str) -> Result<String, SimError> {
    run_shard_worker_with(input, &|_| None)
}

/// Like [`run_shard_worker`], but resolving compact `ref <hash>`
/// sections through `resolve` — the long-lived fleet worker passes a
/// lookup into its per-process [`crp_fleet::ScenarioStore`], so a
/// scenario's masses arrive once per worker instead of once per shard.
///
/// # Errors
///
/// As [`run_shard_worker`], plus unresolvable blob references.
pub fn run_shard_worker_with(
    input: &str,
    resolve: &dyn Fn(&str) -> Option<String>,
) -> Result<String, SimError> {
    let (spec, plan, base_seed, shard) = ShardSpec::from_wire_with(input, resolve)?;
    if shard >= plan.num_shards() {
        return Err(wire_error(format!(
            "shard {shard} out of range for a plan of {} shards",
            plan.num_shards()
        )));
    }
    let simulation = spec.to_simulation(plan.trials(), base_seed)?;
    // The kernel choice is not carried on the wire: the worker honours its
    // own `CRP_KERNEL` environment (default: auto).  Kernels are
    // bit-identical to the scalar path, so dispatcher and worker may
    // disagree without affecting the statistics.
    let kernel = simulation.cell_kernel();
    let trial = simulation.trial_fn();
    let job = ShardJob {
        cell: 0,
        shard,
        plan,
        base_seed,
        trial: &trial,
        spec: None,
        kernel: kernel.as_ref(),
    };
    Ok(job.run_inline()?.to_wire())
}

/// Executes shard jobs in `crp_experiments shard-worker` subprocesses, up
/// to `workers` of them concurrently.
///
/// The worker binary is resolved in order from: an explicit
/// [`ProcessBackend::with_command`] path, the `CRP_SHARD_WORKER_BIN`
/// environment variable, the current executable itself (when it *is*
/// `crp_experiments`), or a `crp_experiments` binary next to (or one
/// directory above) the current executable — which finds the right binary
/// from `cargo test` and `cargo bench` processes in the same target
/// directory.
pub struct ProcessBackend {
    workers: usize,
    command: Option<PathBuf>,
}

impl ProcessBackend {
    /// A backend spawning at most `workers` concurrent subprocesses
    /// (clamped to at least 1), resolving the worker binary automatically.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            command: None,
        }
    }

    /// Overrides the worker binary to spawn.
    pub fn with_command(mut self, command: impl Into<PathBuf>) -> Self {
        self.command = Some(command.into());
        self
    }

    /// The configured concurrency.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn worker_command(&self) -> Result<PathBuf, SimError> {
        worker_binary(self.command.as_deref())
    }
}

/// Resolves the `crp_experiments` worker binary for subprocess backends
/// (the per-job [`ProcessBackend`] and the persistent local pools of
/// [`crate::FleetBackend`]), in order from: the explicit override, the
/// `CRP_SHARD_WORKER_BIN` environment variable, the current executable
/// itself (when it *is* `crp_experiments`), or a `crp_experiments` binary
/// next to (or one directory above) the current executable — which finds
/// the right binary from `cargo test` and `cargo bench` processes in the
/// same target directory.
pub(crate) fn worker_binary(explicit: Option<&Path>) -> Result<PathBuf, SimError> {
    if let Some(command) = explicit {
        return Ok(command.to_path_buf());
    }
    if let Ok(path) = std::env::var("CRP_SHARD_WORKER_BIN") {
        if !path.trim().is_empty() {
            return Ok(PathBuf::from(path));
        }
    }
    let exe = std::env::current_exe()
        .map_err(|e| wire_error(format!("cannot resolve the current executable: {e}")))?;
    let worker_name = format!("crp_experiments{}", std::env::consts::EXE_SUFFIX);
    if exe.file_stem().and_then(|s| s.to_str()) == Some("crp_experiments") {
        return Ok(exe);
    }
    let parent = exe.parent();
    for dir in [parent, parent.and_then(Path::parent)]
        .into_iter()
        .flatten()
    {
        let candidate = dir.join(&worker_name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(wire_error(
        "cannot locate the crp_experiments worker binary; build it \
         (cargo build --bin crp_experiments) or set CRP_SHARD_WORKER_BIN",
    ))
}

/// Runs one job in one subprocess: spec in on stdin, accumulator out on
/// stdout.
fn run_job_in_subprocess(command: &Path, job: &ShardJob<'_>) -> Result<TrialAccumulator, SimError> {
    let spec = job.spec.ok_or_else(|| {
        wire_error(format!(
            "the process backend requires a registry-described simulation, but cell {} \
         was built from a raw closure or a custom protocol object; use the serial \
         or thread backend for it",
            job.cell
        ))
    })?;
    let input = spec.to_wire(job.plan, job.base_seed, job.shard);

    let mut child = Command::new(command)
        .arg("shard-worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .map_err(|e| wire_error(format!("failed to spawn shard worker {command:?}: {e}")))?;
    // A worker that rejects the spec can exit while the parent is still
    // streaming it, failing this write with a broken pipe — so don't bail
    // out yet: collect the child's output first, because its stderr
    // carries the actionable diagnostic.
    let write_result = {
        let mut stdin = child.stdin.take().expect("stdin was piped");
        stdin.write_all(input.as_bytes())
        // Dropping stdin here sends EOF.
    };
    let output = child
        .wait_with_output()
        .map_err(|e| wire_error(format!("failed to collect shard-worker output: {e}")))?;
    if !output.status.success() {
        let stderr = String::from_utf8_lossy(&output.stderr);
        return Err(wire_error(format!(
            "shard worker for (cell {}, shard {}) failed ({}): {}",
            job.cell,
            job.shard,
            output.status,
            stderr.trim()
        )));
    }
    if let Err(e) = write_result {
        return Err(wire_error(format!(
            "failed to write the shard spec to the worker: {e}"
        )));
    }
    let stdout = std::str::from_utf8(&output.stdout)
        .map_err(|e| wire_error(format!("shard-worker output is not UTF-8: {e}")))?;
    TrialAccumulator::from_wire(stdout)
        .map_err(|e| wire_error(format!("malformed shard-worker accumulator: {e}")))
}

impl ShardBackend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn execute(
        &self,
        jobs: &[ShardJob<'_>],
        done: JobDoneFn<'_>,
    ) -> Result<Vec<TrialAccumulator>, SimError> {
        let command = self.worker_command()?;
        steal_jobs(self.workers, jobs, done, |job| {
            run_job_in_subprocess(&command, job)
        })
    }
}
