//! Summary statistics over Monte-Carlo trial outcomes.

/// Summary statistics of a sample of per-trial round counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Computes summary statistics from raw samples.
    ///
    /// Returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("round counts are finite"));
        let quantile = |q: f64| -> f64 {
            let pos = q * (count - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        };
        Some(Self {
            count,
            mean,
            std_dev: variance.sqrt(),
            median: quantile(0.5),
            p10: quantile(0.1),
            p90: quantile(0.9),
            min: sorted[0],
            max: sorted[count - 1],
        })
    }

    /// The half-width of an approximate 95% confidence interval for the
    /// mean (`1.96 · s / √n`).
    pub fn confidence_95(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Outcome statistics of a batch of contention-resolution trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Total number of trials run.
    pub trials: usize,
    /// Number of trials that resolved contention within their round budget.
    pub resolved: usize,
    /// Round-count statistics over *resolved* trials only (the paper's §2
    /// algorithms are one-shot, constant-probability attempts, so the
    /// interesting quantity is how fast resolution happens when it does).
    pub rounds_when_resolved: Option<SummaryStats>,
    /// Round-count statistics over all trials, counting unresolved trials
    /// at their full round budget (the natural quantity for the repeating /
    /// expected-time protocols).
    pub rounds_overall: Option<SummaryStats>,
}

impl TrialStats {
    /// Fraction of trials that resolved.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.resolved as f64 / self.trials as f64
        }
    }

    /// Mean rounds over resolved trials, or `NaN` if nothing resolved.
    pub fn mean_rounds_when_resolved(&self) -> f64 {
        self.rounds_when_resolved
            .as_ref()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }

    /// Mean rounds over all trials (unresolved trials count their budget),
    /// or `NaN` if there were no trials.
    pub fn mean_rounds_overall(&self) -> f64 {
        self.rounds_overall
            .as_ref()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let stats = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(stats.count, 5);
        assert!((stats.mean - 3.0).abs() < 1e-12);
        assert!((stats.median - 3.0).abs() < 1e-12);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 5.0);
        assert!((stats.std_dev - 1.5811388).abs() < 1e-6);
        assert!(stats.confidence_95() > 0.0);
    }

    #[test]
    fn empty_sample_yields_none() {
        assert!(SummaryStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let stats = SummaryStats::from_samples(&[7.0]).unwrap();
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.median, 7.0);
        assert_eq!(stats.p10, 7.0);
        assert_eq!(stats.p90, 7.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let stats = SummaryStats::from_samples(&samples).unwrap();
        assert!(stats.p10 <= stats.median);
        assert!(stats.median <= stats.p90);
        assert!(stats.p90 <= stats.max);
    }

    #[test]
    fn trial_stats_rates() {
        let stats = TrialStats {
            trials: 10,
            resolved: 7,
            rounds_when_resolved: SummaryStats::from_samples(&[1.0, 2.0, 3.0]),
            rounds_overall: SummaryStats::from_samples(&[1.0, 2.0, 3.0, 50.0]),
        };
        assert!((stats.success_rate() - 0.7).abs() < 1e-12);
        assert!((stats.mean_rounds_when_resolved() - 2.0).abs() < 1e-12);
        assert!((stats.mean_rounds_overall() - 14.0).abs() < 1e-12);
        let empty = TrialStats {
            trials: 0,
            resolved: 0,
            rounds_when_resolved: None,
            rounds_overall: None,
        };
        assert_eq!(empty.success_rate(), 0.0);
        assert!(empty.mean_rounds_when_resolved().is_nan());
    }
}
