//! Summary statistics over Monte-Carlo trial outcomes.
//!
//! Two representations exist:
//!
//! * [`TrialAccumulator`] — a *mergeable streaming* accumulator (Welford
//!   mean/variance, exact min/max, and a fixed-size log-bucketed quantile
//!   sketch).  Shards of a Monte-Carlo batch each fold into their own
//!   accumulator and are merged in shard order, so the full sample vector
//!   is never materialised.  Merging is deterministic: folding the same
//!   shards in the same order always produces bit-identical results,
//!   regardless of how many threads computed the shards.
//! * [`TrialStats`] / [`SummaryStats`] — the finalised read-only view the
//!   report layer and all downstream experiment code consume, unchanged
//!   from the collect-then-sort era.

/// Number of exact buckets (values below this are stored exactly) and
/// sub-buckets per octave of the quantile sketch.  With 128 sub-buckets the
/// worst-case relative error of a reconstructed value is `1/256 ≈ 0.4%`.
const SKETCH_PRECISION: usize = 128;

/// A fixed-size streaming quantile sketch over non-negative integers.
///
/// Values below [`SKETCH_PRECISION`] occupy one exact bucket each; larger
/// values share log-spaced buckets with `SKETCH_PRECISION` linear
/// sub-buckets per power of two (HdrHistogram-style).  The sketch is
/// mergeable (bucket-wise addition), deterministic, and its size is bounded
/// by the value range, never by the number of samples.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuantileSketch {
    /// Bucket occupancy counts, grown lazily up to the largest recorded
    /// value's bucket.
    counts: Vec<u64>,
    /// Total number of recorded values.
    total: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of `value`.
    fn bucket_index(value: u64) -> usize {
        if value < SKETCH_PRECISION as u64 {
            value as usize
        } else {
            // `value` is in the octave [2^m, 2^{m+1}) with m >= 7; the top
            // seven bits below the leading one select the sub-bucket.
            let m = 63 - value.leading_zeros() as u64;
            let sub = ((value >> (m - 7)) & 127) as usize;
            (m as usize - 6) * SKETCH_PRECISION + sub
        }
    }

    /// The representative (lower-midpoint) value of bucket `index`.
    fn bucket_value(index: usize) -> u64 {
        if index < SKETCH_PRECISION {
            index as u64
        } else {
            let m = index / SKETCH_PRECISION + 6;
            let sub = (index % SKETCH_PRECISION) as u64;
            let lo = (1u64 << m) + (sub << (m - 7));
            let width = 1u64 << (m - 7);
            lo + (width - 1) / 2
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let index = Self::bucket_index(value);
        if index >= self.counts.len() {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += 1;
        self.total += 1;
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merges another sketch into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
    }

    /// The value at rank `rank` (0-based, by ascending value), or `None`
    /// for an out-of-range rank.
    fn value_at_rank(&self, rank: u64) -> Option<u64> {
        if rank >= self.total {
            return None;
        }
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > rank {
                return Some(Self::bucket_value(index));
            }
        }
        None
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) with linear interpolation
    /// between the neighbouring order statistics, mirroring
    /// [`SummaryStats::from_samples`].  Returns `None` for an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let position = q * (self.total - 1) as f64;
        let lo_rank = position.floor() as u64;
        let hi_rank = position.ceil() as u64;
        let lo = self.value_at_rank(lo_rank)? as f64;
        if lo_rank == hi_rank {
            return Some(lo);
        }
        let hi = self.value_at_rank(hi_rank)? as f64;
        let frac = position - lo_rank as f64;
        Some(lo * (1.0 - frac) + hi * frac)
    }
}

/// A mergeable streaming accumulator over one stream of integer samples:
/// count, Welford mean/M2, exact min/max, and a quantile sketch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamAccumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: u64,
    max: u64,
    sketch: QuantileSketch,
}

impl StreamAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        let delta = value as f64 - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value as f64 - self.mean;
        self.m2 += delta * delta2;
        self.sketch.record(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    ///
    /// Merging is a deterministic function of the two operands, so folding
    /// a fixed sequence of accumulators in a fixed order always yields
    /// bit-identical results.
    pub fn merge(&mut self, other: &StreamAccumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sketch.merge(&other.sketch);
    }

    /// Finalises the stream into a [`SummaryStats`] view, or `None` if the
    /// stream is empty.
    pub fn finalize(&self) -> Option<SummaryStats> {
        if self.count == 0 {
            return None;
        }
        let variance = if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        };
        let quantile = |q: f64| {
            self.sketch
                .quantile(q)
                .expect("non-empty stream has quantiles")
        };
        Some(SummaryStats {
            count: self.count as usize,
            mean: self.mean,
            std_dev: variance.max(0.0).sqrt(),
            median: quantile(0.5),
            p10: quantile(0.1),
            p90: quantile(0.9),
            min: self.min as f64,
            max: self.max as f64,
        })
    }
}

/// A mergeable streaming accumulator over contention-resolution trial
/// outcomes: the streaming replacement for collecting every per-trial round
/// count into a vector.
///
/// Each runner shard folds its outcomes into its own accumulator; the
/// driver merges the shard accumulators deterministically in shard order
/// and finalises into the read-only [`TrialStats`] view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrialAccumulator {
    trials: u64,
    resolved: StreamAccumulator,
    overall: StreamAccumulator,
}

impl TrialAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial outcome.
    pub fn record(&mut self, resolved: bool, rounds: u64) {
        self.trials += 1;
        self.overall.record(rounds);
        if resolved {
            self.resolved.record(rounds);
        }
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of resolved trials.
    pub fn resolved(&self) -> u64 {
        self.resolved.count()
    }

    /// Merges another accumulator into this one.
    ///
    /// The merge is deterministic: for a fixed operand order the result is
    /// bit-identical no matter which threads produced the operands.  It is
    /// also associative up to floating-point rounding, and exactly
    /// order-insensitive for the integer fields (counts, min/max, sketch
    /// buckets).
    pub fn merge(&mut self, other: &TrialAccumulator) {
        self.trials += other.trials;
        self.resolved.merge(&other.resolved);
        self.overall.merge(&other.overall);
    }

    /// Finalises into the read-only [`TrialStats`] view.
    pub fn finalize(&self) -> TrialStats {
        TrialStats {
            trials: self.trials as usize,
            resolved: self.resolved.count() as usize,
            rounds_when_resolved: self.resolved.finalize(),
            rounds_overall: self.overall.finalize(),
        }
    }

    /// Serialises the accumulator into the line-based wire format the
    /// multi-process shard backend ships over worker stdout.
    ///
    /// Floating-point fields are encoded as IEEE-754 bit patterns (hex), so
    /// [`TrialAccumulator::from_wire`] reconstructs a *bit-identical*
    /// accumulator — the property that keeps [`TrialStats`] byte-for-byte
    /// equal no matter which process computed a shard.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str("crp-shard-accumulator v1\n");
        out.push_str(&format!("trials {}\n", self.trials));
        wire_stream(&mut out, "resolved", &self.resolved);
        wire_stream(&mut out, "overall", &self.overall);
        out.push_str("end\n");
        out
    }

    /// Parses the wire format produced by [`TrialAccumulator::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed line.
    pub fn from_wire(input: &str) -> Result<Self, String> {
        let mut lines = input.lines();
        let header = lines.next().ok_or("empty accumulator message")?;
        if header != "crp-shard-accumulator v1" {
            return Err(format!("unexpected accumulator header {header:?}"));
        }
        let trials = parse_field(lines.next(), "trials")?
            .parse::<u64>()
            .map_err(|e| format!("invalid trials count: {e}"))?;
        let resolved = parse_stream(&mut lines, "resolved")?;
        let overall = parse_stream(&mut lines, "overall")?;
        match lines.next() {
            Some("end") => Ok(Self {
                trials,
                resolved,
                overall,
            }),
            other => Err(format!("expected end marker, got {other:?}")),
        }
    }
}

/// Appends one `StreamAccumulator` as two wire lines (moments + sketch).
fn wire_stream(out: &mut String, label: &str, stream: &StreamAccumulator) {
    out.push_str(&format!(
        "{label} {} {:016x} {:016x} {} {}\n",
        stream.count,
        stream.mean.to_bits(),
        stream.m2.to_bits(),
        stream.min,
        stream.max
    ));
    out.push_str(&format!("{label}-counts {}", stream.sketch.total));
    for &count in &stream.sketch.counts {
        out.push_str(&format!(" {count}"));
    }
    out.push('\n');
}

/// Extracts the payload of the line `"<label> <payload>"`.
fn parse_field<'a>(line: Option<&'a str>, label: &str) -> Result<&'a str, String> {
    let line = line.ok_or_else(|| format!("missing {label} line"))?;
    line.strip_prefix(label)
        .map(str::trim_start)
        .ok_or_else(|| format!("expected a {label} line, got {line:?}"))
}

/// Parses the two lines emitted by [`wire_stream`].
fn parse_stream<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    label: &str,
) -> Result<StreamAccumulator, String> {
    let moments = parse_field(lines.next(), label)?;
    let mut tokens = moments.split_ascii_whitespace();
    let mut next = |what: &str| {
        tokens
            .next()
            .ok_or_else(|| format!("{label} line is missing {what}"))
    };
    let count = next("count")?
        .parse::<u64>()
        .map_err(|e| format!("invalid {label} count: {e}"))?;
    let mean = parse_f64_bits(next("mean")?, label)?;
    let m2 = parse_f64_bits(next("m2")?, label)?;
    let min = next("min")?
        .parse::<u64>()
        .map_err(|e| format!("invalid {label} min: {e}"))?;
    let max = next("max")?
        .parse::<u64>()
        .map_err(|e| format!("invalid {label} max: {e}"))?;

    let counts_label = format!("{label}-counts");
    let sketch_line = parse_field(lines.next(), &counts_label)?;
    let mut tokens = sketch_line.split_ascii_whitespace();
    let total = tokens
        .next()
        .ok_or_else(|| format!("{counts_label} line is missing its total"))?
        .parse::<u64>()
        .map_err(|e| format!("invalid {counts_label} total: {e}"))?;
    let counts = tokens
        .map(|t| {
            t.parse::<u64>()
                .map_err(|e| format!("invalid {counts_label} bucket: {e}"))
        })
        .collect::<Result<Vec<u64>, String>>()?;
    if counts.iter().sum::<u64>() != total {
        return Err(format!("{counts_label} buckets do not sum to the total"));
    }
    Ok(StreamAccumulator {
        count,
        mean,
        m2,
        min,
        max,
        sketch: QuantileSketch { counts, total },
    })
}

/// Parses a 16-digit hex IEEE-754 bit pattern back into an `f64`.
fn parse_f64_bits(token: &str, label: &str) -> Result<f64, String> {
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("invalid {label} float bits {token:?}: {e}"))
}

/// Summary statistics of a sample of per-trial round counts.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub std_dev: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl SummaryStats {
    /// Computes summary statistics from raw samples.
    ///
    /// Returns `None` for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("round counts are finite"));
        let quantile = |q: f64| -> f64 {
            let pos = q * (count - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let frac = pos - lo as f64;
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac
            }
        };
        Some(Self {
            count,
            mean,
            std_dev: variance.sqrt(),
            median: quantile(0.5),
            p10: quantile(0.1),
            p90: quantile(0.9),
            min: sorted[0],
            max: sorted[count - 1],
        })
    }

    /// The half-width of an approximate 95% confidence interval for the
    /// mean (`1.96 · s / √n`).
    pub fn confidence_95(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Outcome statistics of a batch of contention-resolution trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Total number of trials run.
    pub trials: usize,
    /// Number of trials that resolved contention within their round budget.
    pub resolved: usize,
    /// Round-count statistics over *resolved* trials only (the paper's §2
    /// algorithms are one-shot, constant-probability attempts, so the
    /// interesting quantity is how fast resolution happens when it does).
    pub rounds_when_resolved: Option<SummaryStats>,
    /// Round-count statistics over all trials, counting unresolved trials
    /// at their full round budget (the natural quantity for the repeating /
    /// expected-time protocols).
    pub rounds_overall: Option<SummaryStats>,
}

impl TrialStats {
    /// Fraction of trials that resolved.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.resolved as f64 / self.trials as f64
        }
    }

    /// Mean rounds over resolved trials, or `NaN` if nothing resolved.
    pub fn mean_rounds_when_resolved(&self) -> f64 {
        self.rounds_when_resolved
            .as_ref()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }

    /// Mean rounds over all trials (unresolved trials count their budget),
    /// or `NaN` if there were no trials.
    pub fn mean_rounds_overall(&self) -> f64 {
        self.rounds_overall
            .as_ref()
            .map(|s| s.mean)
            .unwrap_or(f64::NAN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_info::SizeDistribution;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Exact interpolated quantile of a sorted sample (the
    /// `SummaryStats::from_samples` definition).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }

    fn assert_sketch_quantiles_close(samples: &[u64], label: &str) {
        let mut sketch = QuantileSketch::new();
        for &s in samples {
            sketch.record(s);
        }
        let mut sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9] {
            let exact = exact_quantile(&sorted, q);
            let approx = sketch.quantile(q).unwrap();
            let tolerance = (exact.abs() * 0.02).max(1e-9);
            assert!(
                (approx - exact).abs() <= tolerance,
                "{label}: q={q} sketch {approx} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_quantiles_within_two_percent_of_exact_on_geometric_draws() {
        let truth = SizeDistribution::geometric(4096, 0.05).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let samples: Vec<u64> = (0..10_000).map(|_| truth.sample(&mut rng) as u64).collect();
        assert_sketch_quantiles_close(&samples, "geometric");
    }

    #[test]
    fn sketch_quantiles_within_two_percent_of_exact_on_bimodal_draws() {
        let truth = SizeDistribution::bimodal(4096, 48, 2000, 0.7).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let samples: Vec<u64> = (0..10_000).map(|_| truth.sample(&mut rng) as u64).collect();
        assert_sketch_quantiles_close(&samples, "bimodal");
    }

    #[test]
    fn sketch_is_exact_below_the_linear_limit() {
        let mut sketch = QuantileSketch::new();
        for v in [3u64, 7, 7, 100, 127] {
            sketch.record(v);
        }
        assert_eq!(sketch.quantile(0.0).unwrap(), 3.0);
        assert_eq!(sketch.quantile(0.5).unwrap(), 7.0);
        assert_eq!(sketch.quantile(1.0).unwrap(), 127.0);
        assert!(QuantileSketch::new().quantile(0.5).is_none());
    }

    #[test]
    fn sketch_bucket_round_trip_error_is_bounded() {
        for value in [1u64, 127, 128, 255, 256, 1000, 4096, 1 << 20, u64::MAX / 2] {
            let rep = QuantileSketch::bucket_value(QuantileSketch::bucket_index(value));
            let err = (rep as f64 - value as f64).abs() / value as f64;
            assert!(err <= 1.0 / 256.0, "value {value}: rep {rep}, err {err}");
        }
    }

    #[test]
    fn accumulator_merge_agrees_with_single_stream_on_random_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for case in 0..50 {
            use rand::Rng;
            let len = 1 + rng.gen_range(0usize..200);
            let outcomes: Vec<(bool, u64)> = (0..len)
                .map(|_| (rng.gen_bool(0.8), 1 + rng.gen_range(0u64..50_000)))
                .collect();

            let mut whole = TrialAccumulator::new();
            for &(resolved, rounds) in &outcomes {
                whole.record(resolved, rounds);
            }

            let cut = rng.gen_range(0..=len);
            let mut left = TrialAccumulator::new();
            let mut right = TrialAccumulator::new();
            for &(resolved, rounds) in &outcomes[..cut] {
                left.record(resolved, rounds);
            }
            for &(resolved, rounds) in &outcomes[cut..] {
                right.record(resolved, rounds);
            }
            left.merge(&right);

            let a = whole.finalize();
            let b = left.finalize();
            assert_eq!(a.trials, b.trials, "case {case}");
            assert_eq!(a.resolved, b.resolved, "case {case}");
            let (sa, sb) = (a.rounds_overall.unwrap(), b.rounds_overall.unwrap());
            assert!(
                (sa.mean - sb.mean).abs() < 1e-6 * sa.mean.max(1.0),
                "case {case}"
            );
            assert!(
                (sa.std_dev - sb.std_dev).abs() < 1e-6 * sa.std_dev.max(1.0),
                "case {case}"
            );
            // Integer-derived fields agree exactly.
            assert_eq!(sa.min, sb.min, "case {case}");
            assert_eq!(sa.max, sb.max, "case {case}");
            assert_eq!(sa.median, sb.median, "case {case}");
            assert_eq!(sa.p10, sb.p10, "case {case}");
            assert_eq!(sa.p90, sb.p90, "case {case}");
        }
    }

    #[test]
    fn accumulator_merge_is_associative_on_random_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for case in 0..50 {
            use rand::Rng;
            let make = |rng: &mut ChaCha8Rng| {
                let mut acc = TrialAccumulator::new();
                for _ in 0..rng.gen_range(0usize..100) {
                    let resolved = rng.gen_bool(0.7);
                    let rounds = 1 + rng.gen_range(0u64..10_000);
                    acc.record(resolved, rounds);
                }
                acc
            };
            let (a, b, c) = (make(&mut rng), make(&mut rng), make(&mut rng));

            // (a ⊕ b) ⊕ c
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            // a ⊕ (b ⊕ c)
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            let (fa, fb) = (left.finalize(), right.finalize());
            assert_eq!(fa.trials, fb.trials, "case {case}");
            assert_eq!(fa.resolved, fb.resolved, "case {case}");
            match (&fa.rounds_overall, &fb.rounds_overall) {
                (Some(sa), Some(sb)) => {
                    assert!(
                        (sa.mean - sb.mean).abs() < 1e-9 * sa.mean.abs().max(1.0),
                        "case {case}: means {} vs {}",
                        sa.mean,
                        sb.mean
                    );
                    assert!(
                        (sa.std_dev - sb.std_dev).abs() < 1e-6 * sa.std_dev.abs().max(1.0),
                        "case {case}: std {} vs {}",
                        sa.std_dev,
                        sb.std_dev
                    );
                    // Sketch and min/max merges are exactly associative.
                    assert_eq!(sa.median, sb.median, "case {case}");
                    assert_eq!(sa.min, sb.min, "case {case}");
                    assert_eq!(sa.max, sb.max, "case {case}");
                }
                (None, None) => {}
                other => panic!("case {case}: mismatched streams {other:?}"),
            }
        }
    }

    #[test]
    fn accumulator_finalize_matches_from_samples_moments() {
        let samples = [4u64, 8, 15, 16, 23, 42];
        let mut acc = TrialAccumulator::new();
        for &s in &samples {
            acc.record(true, s);
        }
        let stats = acc.finalize();
        let floats: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        let reference = SummaryStats::from_samples(&floats).unwrap();
        let streamed = stats.rounds_overall.unwrap();
        assert_eq!(streamed.count, reference.count);
        assert!((streamed.mean - reference.mean).abs() < 1e-12);
        assert!((streamed.std_dev - reference.std_dev).abs() < 1e-9);
        assert_eq!(streamed.min, reference.min);
        assert_eq!(streamed.max, reference.max);
        // Quantiles agree exactly here: all values sit in exact buckets.
        assert_eq!(streamed.median, reference.median);
        assert_eq!(stats.resolved, samples.len());
    }

    #[test]
    fn wire_round_trip_is_bit_identical() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for case in 0..20 {
            use rand::Rng;
            let mut acc = TrialAccumulator::new();
            for _ in 0..rng.gen_range(0usize..300) {
                acc.record(rng.gen_bool(0.8), 1 + rng.gen_range(0u64..100_000));
            }
            let round_tripped = TrialAccumulator::from_wire(&acc.to_wire())
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
            // Structural equality covers every f64 bit (PartialEq on the
            // raw fields) and the full sketch bucket vector.
            assert_eq!(acc, round_tripped, "case {case}");
            assert_eq!(acc.finalize(), round_tripped.finalize(), "case {case}");
        }
    }

    #[test]
    fn wire_parse_rejects_malformed_messages() {
        assert!(TrialAccumulator::from_wire("").is_err());
        assert!(TrialAccumulator::from_wire("bogus header\n").is_err());
        let mut acc = TrialAccumulator::new();
        acc.record(true, 42);
        let wire = acc.to_wire();
        // Truncated message.
        let truncated: String = wire.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(TrialAccumulator::from_wire(&truncated).is_err());
        // Corrupted bucket total.
        let corrupted = wire.replace("overall-counts 1", "overall-counts 7");
        assert!(TrialAccumulator::from_wire(&corrupted).is_err());
    }

    #[test]
    fn summary_of_known_sample() {
        let stats = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(stats.count, 5);
        assert!((stats.mean - 3.0).abs() < 1e-12);
        assert!((stats.median - 3.0).abs() < 1e-12);
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 5.0);
        assert!((stats.std_dev - 1.5811388).abs() < 1e-6);
        assert!(stats.confidence_95() > 0.0);
    }

    #[test]
    fn empty_sample_yields_none() {
        assert!(SummaryStats::from_samples(&[]).is_none());
    }

    #[test]
    fn single_sample_has_zero_spread() {
        let stats = SummaryStats::from_samples(&[7.0]).unwrap();
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.median, 7.0);
        assert_eq!(stats.p10, 7.0);
        assert_eq!(stats.p90, 7.0);
    }

    #[test]
    fn quantiles_are_ordered() {
        let samples: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let stats = SummaryStats::from_samples(&samples).unwrap();
        assert!(stats.p10 <= stats.median);
        assert!(stats.median <= stats.p90);
        assert!(stats.p90 <= stats.max);
    }

    #[test]
    fn trial_stats_rates() {
        let stats = TrialStats {
            trials: 10,
            resolved: 7,
            rounds_when_resolved: SummaryStats::from_samples(&[1.0, 2.0, 3.0]),
            rounds_overall: SummaryStats::from_samples(&[1.0, 2.0, 3.0, 50.0]),
        };
        assert!((stats.success_rate() - 0.7).abs() < 1e-12);
        assert!((stats.mean_rounds_when_resolved() - 2.0).abs() < 1e-12);
        assert!((stats.mean_rounds_overall() - 14.0).abs() < 1e-12);
        let empty = TrialStats {
            trials: 0,
            resolved: 0,
            rounds_when_resolved: None,
            rounds_overall: None,
        };
        assert_eq!(empty.success_rate(), 0.0);
        assert!(empty.mean_rounds_when_resolved().is_nan());
    }
}
