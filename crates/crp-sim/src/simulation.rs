//! The builder-style `Simulation` front-end.
//!
//! One fluent path from "which protocol, which workload" to aggregated
//! Monte-Carlo statistics:
//!
//! ```
//! use crp_protocols::ProtocolSpec;
//! use crp_sim::Simulation;
//!
//! # fn main() -> Result<(), crp_sim::SimError> {
//! let stats = Simulation::builder()
//!     .protocol(ProtocolSpec::new("decay").universe(1024))
//!     .participants(70)
//!     .max_rounds(10_000)
//!     .trials(500)
//!     .seed(7)
//!     .run()?;
//! assert!(stats.success_rate() > 0.99);
//! # Ok(())
//! # }
//! ```
//!
//! The builder validates everything *before* any trial runs and returns
//! typed [`SimError`]s instead of panicking: zero participants, a zero
//! round budget, a missing protocol, and protocol/channel-mode mismatches
//! are all rejected at [`SimulationBuilder::build`] time.

use crp_channel::{ChannelMode, ParticipantId};
use crp_info::SizeDistribution;
use crp_protocols::{try_run_protocol, try_run_protocol_with, Behavior, Protocol, ProtocolSpec};
use rand_chacha::ChaCha8Rng;

use crate::runner::backend::{backend_for, execute_and_merge};
use crate::runner::kernel::{CellKernel, KernelPopulation};
use crate::runner::process::{ShardSpec, WirePopulation};
use crate::runner::{
    sample_contending_size, BackendChoice, KernelChoice, RunnerConfig, ShardBackend, ShardJob,
    ShardPlan, TrialOutcome,
};
use crate::stats::TrialStats;
use crate::SimError;

/// How the per-trial participant set is chosen.
enum Population {
    /// A fixed participant count; uniform protocols ignore identities and
    /// per-node protocols get the ids `0, …, k−1`.
    Fixed(usize),
    /// An explicit id placement (per-node protocols under adversarial
    /// placements).
    Placed(Vec<ParticipantId>),
    /// The participant count is sampled from a ground-truth distribution
    /// each trial (clamped to at least 2, the smallest size with
    /// contention).
    Sampled(SizeDistribution),
}

/// Fluent configuration for a [`Simulation`].
///
/// Obtained from [`Simulation::builder`]; consumed by
/// [`SimulationBuilder::build`] or [`SimulationBuilder::run`].
pub struct SimulationBuilder {
    spec: Option<ProtocolSpec>,
    protocol: Option<Box<dyn Protocol>>,
    population: Option<Population>,
    max_rounds: Option<usize>,
    channel_mode: Option<ChannelMode>,
    config: RunnerConfig,
}

impl SimulationBuilder {
    fn new() -> Self {
        Self {
            spec: None,
            protocol: None,
            population: None,
            max_rounds: None,
            channel_mode: None,
            config: RunnerConfig::default(),
        }
    }

    /// Selects the protocol by registry spec (name plus parameters).
    pub fn protocol(mut self, spec: ProtocolSpec) -> Self {
        self.spec = Some(spec);
        self.protocol = None;
        self
    }

    /// Supplies an already-constructed protocol object (for custom
    /// protocols not in the registry).
    pub fn protocol_object(mut self, protocol: Box<dyn Protocol>) -> Self {
        self.protocol = Some(protocol);
        self.spec = None;
        self
    }

    /// Fixes the participant count for every trial.
    pub fn participants(mut self, count: usize) -> Self {
        self.population = Some(Population::Fixed(count));
        self
    }

    /// Fixes an explicit participant-id placement for every trial (needed
    /// for adversarial placements of the per-node §3 protocols).
    pub fn participant_ids(mut self, ids: Vec<usize>) -> Self {
        self.population = Some(Population::Placed(
            ids.into_iter().map(ParticipantId).collect(),
        ));
        self
    }

    /// Samples the participant count from `truth` each trial.
    pub fn truth(mut self, truth: SizeDistribution) -> Self {
        self.population = Some(Population::Sampled(truth));
        self
    }

    /// Caps every trial at `max_rounds` rounds.  Defaults to the
    /// protocol's own horizon when it has one.
    pub fn max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Pins the channel mode explicitly.  Only needed to *assert* a mode:
    /// building fails with [`SimError::ModeMismatch`] if the protocol
    /// requires the other mode.
    pub fn channel_mode(mut self, mode: ChannelMode) -> Self {
        self.channel_mode = Some(mode);
        self
    }

    /// Number of Monte-Carlo trials.
    pub fn trials(mut self, trials: usize) -> Self {
        self.config.trials = trials;
        self
    }

    /// Base seed; trial `i` derives its own `ChaCha8Rng` stream from
    /// `(seed, i)` (see [`ShardPlan::trial_rng`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.base_seed = seed;
        self
    }

    /// Number of worker threads (1 = run inline).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads.max(1);
        self
    }

    /// Selects the shard backend [`Simulation::run`] executes on.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.config.backend = backend;
        self
    }

    /// Selects the trial-kernel path (batched struct-of-arrays fast paths
    /// vs. the scalar executor).  The statistics are bit-identical either
    /// way; see [`KernelChoice`].
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.config.kernel = kernel;
        self
    }

    /// Replaces the whole runner configuration at once.
    pub fn runner(mut self, config: RunnerConfig) -> Self {
        self.config = config;
        self
    }

    /// Validates the configuration and constructs the [`Simulation`].
    ///
    /// # Errors
    ///
    /// * [`SimError::MissingProtocol`] — neither a spec nor a protocol
    ///   object was supplied.  (A spec the registry rejects — unknown
    ///   name, missing construction parameter — surfaces as the
    ///   converted [`crp_protocols::ProtocolError`] instead.)
    /// * [`SimError::InvalidParameter`] — zero participants, zero trials,
    ///   a zero round budget, or no budget at all for an unbounded
    ///   protocol.
    /// * [`SimError::ModeMismatch`] — an explicitly pinned channel mode
    ///   contradicts the protocol's [`crp_protocols::ProtocolKind`].
    pub fn build(self) -> Result<Simulation, SimError> {
        let spec = self.spec.clone();
        let protocol = match (self.protocol, &self.spec) {
            (Some(protocol), _) => protocol,
            (None, Some(spec)) => spec.build()?,
            (None, None) => return Err(SimError::MissingProtocol),
        };

        let required_mode = protocol.kind().channel_mode();
        if let Some(requested) = self.channel_mode {
            if requested != required_mode {
                return Err(SimError::ModeMismatch {
                    protocol: protocol.name().to_string(),
                    required: required_mode,
                    requested,
                });
            }
        }

        let population = self.population.ok_or_else(|| SimError::InvalidParameter {
            what: "a population is required: call participants(k), participant_ids(ids) or \
                   truth(distribution)"
                .to_string(),
        })?;
        match &population {
            Population::Fixed(0) => {
                return Err(SimError::InvalidParameter {
                    what: "participants(0): contention resolution needs at least one participant"
                        .to_string(),
                });
            }
            Population::Placed(ids) if ids.is_empty() => {
                return Err(SimError::InvalidParameter {
                    what: "participant_ids([]): the placement must be non-empty".to_string(),
                });
            }
            _ => {}
        }

        let max_rounds = match self.max_rounds {
            Some(0) => {
                return Err(SimError::InvalidParameter {
                    what: "max_rounds(0): every trial needs a positive round budget".to_string(),
                });
            }
            Some(rounds) => rounds,
            None => match (protocol.horizon(), &population) {
                (Some(horizon), _) => horizon.max(1),
                (None, Population::Placed(ids)) => {
                    per_node_budget(protocol.as_ref(), ids).ok_or_else(budget_required)?
                }
                (None, Population::Fixed(k)) => {
                    let ids: Vec<ParticipantId> = (0..*k).map(ParticipantId).collect();
                    per_node_budget(protocol.as_ref(), &ids).ok_or_else(budget_required)?
                }
                (None, Population::Sampled(_)) => return Err(budget_required()),
            },
        };

        if self.config.trials == 0 {
            return Err(SimError::InvalidParameter {
                what: "trials(0): at least one trial is required".to_string(),
            });
        }

        Ok(Simulation {
            spec,
            protocol,
            population,
            max_rounds,
            config: self.config,
        })
    }

    /// Builds and immediately runs the simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`SimulationBuilder::build`] and [`Simulation::run`]
    /// errors.
    pub fn run(self) -> Result<TrialStats, SimError> {
        self.build()?.run()
    }
}

fn budget_required() -> SimError {
    SimError::InvalidParameter {
        what: "the protocol has no bounded horizon; call max_rounds(..) explicitly".to_string(),
    }
}

/// The worst-case budget a per-node protocol declares for a placement.
fn per_node_budget(protocol: &dyn Protocol, ids: &[ParticipantId]) -> Option<usize> {
    match protocol.behavior() {
        Behavior::PerNode(factory) => factory.round_budget(ids),
        Behavior::Uniform(_) => None,
    }
}

/// A fully validated Monte-Carlo simulation: one protocol, one workload,
/// one runner configuration.
pub struct Simulation {
    /// The registry spec the protocol was built from, kept so the
    /// simulation can be re-described to out-of-process backends (`None`
    /// when a custom protocol object was supplied).
    spec: Option<ProtocolSpec>,
    protocol: Box<dyn Protocol>,
    population: Population,
    max_rounds: usize,
    config: RunnerConfig,
}

impl Simulation {
    /// Starts a new builder.
    pub fn builder() -> SimulationBuilder {
        SimulationBuilder::new()
    }

    /// The protocol under simulation.
    pub fn protocol(&self) -> &dyn Protocol {
        self.protocol.as_ref()
    }

    /// The channel mode every trial runs on (always consistent with the
    /// protocol's kind — mismatches are rejected at build time).
    pub fn channel_mode(&self) -> ChannelMode {
        self.protocol.kind().channel_mode()
    }

    /// The per-trial round budget.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The runner configuration (trials, seed, threads).
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Runs the configured number of trials on the backend the
    /// configuration selects and aggregates the outcomes.
    ///
    /// The protocol is constructed once (at build time) and shared across
    /// all trials and worker threads; each trial only drives it, which
    /// amortises construction over the whole batch.  The statistics are
    /// bit-identical across backends and worker counts.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if any trial fails (e.g. a per-node factory
    /// rejects a sampled participant set), or a [`SimError::Backend`] if
    /// the process backend was selected but the simulation was built from
    /// a custom protocol object it cannot re-describe.
    pub fn run(&self) -> Result<TrialStats, SimError> {
        self.run_on(backend_for(&self.config)?.as_ref())
    }

    /// Like [`Simulation::run`], but on an explicit [`ShardBackend`]
    /// (ignoring the configured [`BackendChoice`]).
    ///
    /// # Errors
    ///
    /// As [`Simulation::run`].
    pub fn run_on(&self, backend: &dyn ShardBackend) -> Result<TrialStats, SimError> {
        let plan = ShardPlan::new(self.config.trials);
        let spec = self.shard_spec();
        let kernel = self.cell_kernel();
        crp_obs::global().inc(if kernel.is_some() {
            "sim.kernel.batched"
        } else {
            "sim.kernel.scalar"
        });
        if crp_obs::trace_enabled() {
            crp_obs::emit(
                &crp_obs::TraceEvent::new("kernel.select")
                    .u64("cell", 0)
                    .str("kernel", kernel.as_ref().map_or("scalar", |k| k.name())),
            );
        }
        let trial = self.trial_fn();
        let trial_ref: &(dyn Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync) = &trial;
        let jobs: Vec<ShardJob<'_>> = (0..plan.num_shards())
            .map(|shard| ShardJob {
                cell: 0,
                shard,
                plan,
                base_seed: self.config.base_seed,
                trial: trial_ref,
                spec: spec.as_ref(),
                kernel: kernel.as_ref(),
            })
            .collect();
        let stats = execute_and_merge(backend, &jobs, 1, &|_| {})?;
        Ok(stats
            .into_iter()
            .next()
            .expect("execute_and_merge returns one TrialStats per cell"))
    }

    /// The per-trial closure of this simulation: samples or places the
    /// participant population and drives the (shared, immutable) protocol
    /// for one trial with the supplied RNG.
    pub(crate) fn trial_fn(
        &self,
    ) -> impl Fn(&mut ChaCha8Rng) -> Result<TrialOutcome, SimError> + Sync + '_ {
        let protocol = self.protocol.as_ref();
        let max_rounds = self.max_rounds;
        move |rng| match &self.population {
            Population::Fixed(k) => run_with_count(protocol, *k, max_rounds, rng),
            Population::Placed(ids) => try_run_protocol_with(protocol, ids, max_rounds, rng)
                .map(TrialOutcome::from)
                .map_err(SimError::from),
            Population::Sampled(truth) => {
                let k = sample_contending_size(truth, rng);
                run_with_count(protocol, k, max_rounds, rng)
            }
        }
    }

    /// The batched trial kernel of this cell, when the configured
    /// [`KernelChoice`] and the protocol's execution style admit one
    /// (`None` falls back to the scalar trial-at-a-time path).  Built
    /// once per cell and shared, immutably, by every shard job and
    /// worker thread.
    pub(crate) fn cell_kernel(&self) -> Option<CellKernel<'_>> {
        let population = match &self.population {
            Population::Fixed(k) => KernelPopulation::Fixed(*k),
            Population::Placed(ids) => KernelPopulation::Placed(ids),
            Population::Sampled(truth) => KernelPopulation::Sampled(truth),
        };
        CellKernel::select(
            self.config.kernel,
            self.protocol.as_ref(),
            population,
            self.max_rounds,
        )
    }

    /// The name of the batched fast path this simulation selects
    /// (`"uniform-constant"`, `"uniform-no-cd"`, `"uniform-cd"` or
    /// `"deterministic"`), or `None` when shards run on the scalar
    /// trial-at-a-time executor.  Diagnostics only — the choice never
    /// affects the statistics.
    pub fn kernel_name(&self) -> Option<&'static str> {
        self.cell_kernel().map(|kernel| kernel.name())
    }

    /// The serialisable description out-of-process backends ship to their
    /// workers, or `None` when the simulation was built around a custom
    /// protocol object.
    pub(crate) fn shard_spec(&self) -> Option<ShardSpec> {
        let protocol = self.spec.clone()?;
        let population = match &self.population {
            Population::Fixed(k) => WirePopulation::Fixed(*k),
            Population::Placed(ids) => {
                WirePopulation::Placed(ids.iter().map(|id| id.index()).collect())
            }
            Population::Sampled(truth) => WirePopulation::Sampled(truth.clone()),
        };
        Some(ShardSpec {
            protocol,
            population,
            max_rounds: self.max_rounds,
        })
    }
}

fn run_with_count(
    protocol: &dyn Protocol,
    k: usize,
    max_rounds: usize,
    rng: &mut ChaCha8Rng,
) -> Result<TrialOutcome, SimError> {
    try_run_protocol(protocol, k, max_rounds, rng)
        .map(TrialOutcome::from)
        .map_err(SimError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_info::CondensedDistribution;

    #[test]
    fn builder_runs_a_registry_protocol_end_to_end() {
        let stats = Simulation::builder()
            .protocol(ProtocolSpec::new("decay").universe(1024))
            .participants(70)
            .max_rounds(10_000)
            .trials(300)
            .seed(7)
            .run()
            .unwrap();
        assert!(stats.success_rate() > 0.99);
    }

    #[test]
    fn missing_protocol_is_a_typed_error() {
        let err = Simulation::builder()
            .participants(10)
            .max_rounds(100)
            .run()
            .unwrap_err();
        assert_eq!(err, SimError::MissingProtocol);
    }

    #[test]
    fn zero_participants_is_rejected_at_build_time() {
        let err = Simulation::builder()
            .protocol(ProtocolSpec::new("decay").universe(64))
            .participants(0)
            .max_rounds(100)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }

    #[test]
    fn zero_round_budget_is_rejected_at_build_time() {
        let err = Simulation::builder()
            .protocol(ProtocolSpec::new("decay").universe(64))
            .participants(4)
            .max_rounds(0)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }

    #[test]
    fn cd_protocol_on_a_no_cd_channel_is_rejected() {
        let err = Simulation::builder()
            .protocol(ProtocolSpec::new("willard").universe(1 << 12))
            .channel_mode(ChannelMode::NoCollisionDetection)
            .participants(40)
            .trials(10)
            .build()
            .map(|_| ())
            .unwrap_err();
        match err {
            SimError::ModeMismatch {
                protocol,
                required,
                requested,
            } => {
                assert_eq!(protocol, "willard");
                assert_eq!(required, ChannelMode::CollisionDetection);
                assert_eq!(requested, ChannelMode::NoCollisionDetection);
            }
            other => panic!("expected ModeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_protocol_without_budget_is_rejected() {
        let prediction = crp_info::SizeDistribution::point_mass(256, 30).unwrap();
        let err = Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(256)
                    .prediction(CondensedDistribution::from_sizes(&prediction)),
            )
            .participants(30)
            .trials(10)
            .build()
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParameter { .. }));
    }

    #[test]
    fn one_shot_protocols_default_to_their_horizon() {
        let prediction = crp_info::SizeDistribution::point_mass(1024, 60).unwrap();
        let simulation = Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess")
                    .universe(1024)
                    .prediction(CondensedDistribution::from_sizes(&prediction)),
            )
            .participants(60)
            .trials(50)
            .seed(3)
            .build()
            .unwrap();
        // The §2.5 one-shot pass is bounded by the number of ranges.
        assert_eq!(simulation.max_rounds(), 10);
        assert_eq!(simulation.channel_mode(), ChannelMode::NoCollisionDetection);
        let stats = simulation.run().unwrap();
        assert_eq!(stats.trials, 50);
    }

    #[test]
    fn per_node_protocols_run_under_explicit_placements() {
        let stats = Simulation::builder()
            .protocol(
                ProtocolSpec::new("det-advice-cd")
                    .universe(256)
                    .advice_bits(2),
            )
            .participant_ids(vec![100, 130, 200])
            .trials(1)
            .seed(0)
            .run()
            .unwrap();
        assert!((stats.success_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_truth_population_runs() {
        let truth = crp_info::SizeDistribution::bimodal(512, 16, 256, 0.9).unwrap();
        let stats = Simulation::builder()
            .protocol(ProtocolSpec::new("decay").universe(512))
            .truth(truth)
            .max_rounds(50_000)
            .trials(200)
            .seed(5)
            .run()
            .unwrap();
        assert!(stats.success_rate() > 0.99);
    }
}
