//! Experiment T2: reproduces the paper's Table 2 (perfect advice)
//! empirically.
//!
//! Table 2 gives tight bounds on contention resolution with `b` bits of
//! perfect advice:
//!
//! | | deterministic | randomized |
//! |---|---|---|
//! | no collision detection | `Θ(n^{1−b}/log n)` (≈ `n / 2^b` scan) | `Θ(log n / 2^b)` |
//! | collision detection | `Θ(log n − b)` | `Θ(log log n − b)` |
//!
//! For a sweep of advice budgets the experiment measures each of the four
//! matching upper-bound protocols against its theory column.  The
//! deterministic protocols are measured against an adversarial participant
//! placement (worst case); the randomized ones report expected rounds over
//! Monte-Carlo trials.

use crp_info::SizeDistribution;
use crp_predict::Scenario;
use crp_protocols::ProtocolSpec;

use crate::report::{fmt_f64, Table};
use crate::runner::RunnerConfig;
use crate::simulation::Simulation;
use crate::sweep::{SweepMatrix, SweepPopulation, SweepProtocol};
use crate::SimError;

/// One advice-budget row of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Advice budget `b` in bits.
    pub advice_bits: usize,
    /// Theory column `n / 2^b` (deterministic, no CD).
    pub theory_det_no_cd: f64,
    /// Measured worst-case rounds of the deterministic no-CD protocol.
    pub det_no_cd_rounds: f64,
    /// Theory column `log n − b` (deterministic, CD).
    pub theory_det_cd: f64,
    /// Measured worst-case rounds of the deterministic CD protocol.
    pub det_cd_rounds: f64,
    /// Theory column `log n / 2^b` (randomized, no CD).
    pub theory_rand_no_cd: f64,
    /// Measured expected rounds of the randomized no-CD protocol.
    pub rand_no_cd_rounds: f64,
    /// Theory column `max(log log n − b, 1)` (randomized, CD).
    pub theory_rand_cd: f64,
    /// Measured expected rounds (conditioned on success within the budget)
    /// of the randomized CD protocol.
    pub rand_cd_rounds: f64,
}

/// Result of the Table 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Result {
    /// Universe size `n`.
    pub universe_size: usize,
    /// One row per advice budget.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Renders the result as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("Table 2 reproduction (n = {})", self.universe_size),
            &[
                "b",
                "n/2^b",
                "det no-CD rounds",
                "log n - b",
                "det CD rounds",
                "log n / 2^b",
                "rand no-CD E[rounds]",
                "loglog n - b",
                "rand CD rounds",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.advice_bits.to_string(),
                fmt_f64(row.theory_det_no_cd),
                fmt_f64(row.det_no_cd_rounds),
                fmt_f64(row.theory_det_cd),
                fmt_f64(row.det_cd_rounds),
                fmt_f64(row.theory_rand_no_cd),
                fmt_f64(row.rand_no_cd_rounds),
                fmt_f64(row.theory_rand_cd),
                fmt_f64(row.rand_cd_rounds),
            ]);
        }
        table
    }
}

/// Picks a worst-ish-case participant set of size `k` for the deterministic
/// scan protocols: the designated (smallest) id sits at the end of its
/// advice interval so the scan pays its full length.
fn adversarial_participants(universe: usize, k: usize, advice_bits: usize) -> Vec<usize> {
    let interval = universe >> advice_bits.min(universe.trailing_zeros() as usize);
    let designated = interval.saturating_sub(1);
    let mut participants = vec![designated];
    let mut next = designated + interval.max(1);
    while participants.len() < k && next < universe {
        participants.push(next);
        next += 7;
    }
    let mut fill = designated + 1;
    while participants.len() < k && fill < universe {
        if !participants.contains(&fill) {
            participants.push(fill);
        }
        fill += 1;
    }
    participants.sort_unstable();
    participants.dedup();
    participants
}

/// Measures one deterministic advice protocol's rounds for one placement:
/// a single-trial [`Simulation`] whose round budget defaults to the
/// protocol's declared worst case.
///
/// `name` is a registry name (`det-advice-no-cd` / `det-advice-cd`).
/// Public so the benches measure exactly what the experiment measures.
///
/// # Errors
///
/// Returns [`SimError`] if the protocol cannot be built or fails to
/// resolve within its worst-case budget (a protocol bug by definition).
pub fn det_rounds(
    name: &str,
    universe: usize,
    participants: &[usize],
    advice_bits: usize,
) -> Result<f64, SimError> {
    let stats = Simulation::builder()
        .protocol(
            ProtocolSpec::new(name)
                .universe(universe)
                .advice_bits(advice_bits),
        )
        .participant_ids(participants.to_vec())
        .trials(1)
        .seed(0)
        .run()?;
    det_rounds_from_stats(name, &stats)
}

/// The worst-case rounds of a deterministic protocol's measured stats;
/// failing to resolve within the declared budget is a protocol bug by
/// definition.  Shared by [`det_rounds`] and the sweep-grid assembly in
/// [`run`] so the two paths cannot diverge.
fn det_rounds_from_stats(label: &str, stats: &crate::TrialStats) -> Result<f64, SimError> {
    if stats.success_rate() < 1.0 {
        return Err(SimError::InvalidParameter {
            what: format!("deterministic protocol {label} failed to resolve within its budget"),
        });
    }
    Ok(stats.mean_rounds_overall())
}

/// The ground truth used by the randomized rows: uniform over the
/// geometric size range containing `participants`, so every sampled size
/// is consistent with the range advice while the trials still vary.
pub fn jitter_truth(participants: usize, universe: usize) -> Result<SizeDistribution, SimError> {
    let range = crp_info::range_index_for_size(participants.max(2));
    let (lo, hi) = crp_info::range_interval(range);
    let hi = hi.min(universe).max(lo);
    let weights: Vec<f64> = (1..=hi)
        .map(|size| if size >= lo { 1.0 } else { 0.0 })
        .collect();
    Ok(SizeDistribution::from_weights(weights)?)
}

/// Runs the Table 2 reproduction for a universe of size `universe_size`
/// (must be a power of two ≥ 16) and a true participant count of
/// `participants`, on the shard backend `config` selects.
///
/// # Errors
///
/// Returns [`SimError::InvalidParameter`] for non-power-of-two or too-small
/// universes.
pub fn run(
    universe_size: usize,
    participants: usize,
    config: &RunnerConfig,
) -> Result<Table2Result, SimError> {
    if universe_size < 16 || !universe_size.is_power_of_two() {
        return Err(SimError::InvalidParameter {
            what: format!("table 2 requires a power-of-two universe >= 16, got {universe_size}"),
        });
    }
    if participants < 2 || participants > universe_size {
        return Err(SimError::InvalidParameter {
            what: format!(
                "participants must be in [2, n], got {participants} for n = {universe_size}"
            ),
        });
    }
    let log_n = (universe_size as f64).log2();
    let log_log_n = log_n.log2();
    let max_bits = log_n as usize;

    let jitter = jitter_truth(participants, universe_size)?;

    // One scenario (the jittered truth); the advice-budget axis unrolls
    // into four protocol columns per budget.  Deterministic protocols run
    // a single trial against their adversarial placement (they are
    // deterministic, so one run is the worst case for that placement);
    // randomized ones keep the Monte-Carlo budget.
    let mut matrix = SweepMatrix::new()
        .scenario(Scenario::new("jitter", jitter))
        .runner(config.clone());
    for b in 0..=max_bits {
        let adversarial = adversarial_participants(universe_size, participants.min(16), b);
        matrix = matrix
            .protocol(
                SweepProtocol::new(
                    format!("det-no-cd-b{b}"),
                    ProtocolSpec::new("det-advice-no-cd")
                        .universe(universe_size)
                        .advice_bits(b),
                )
                .population(SweepPopulation::Placed(adversarial.clone()))
                .trials(1),
            )
            .protocol(
                SweepProtocol::new(
                    format!("det-cd-b{b}"),
                    ProtocolSpec::new("det-advice-cd")
                        .universe(universe_size)
                        .advice_bits(b),
                )
                .population(SweepPopulation::Placed(adversarial))
                .trials(1),
            )
            // Randomized, no CD: truncated decay with range advice;
            // expected rounds over random participant counts near
            // `participants`.
            .protocol(
                SweepProtocol::new(
                    format!("rand-no-cd-b{b}"),
                    ProtocolSpec::new("advised-decay")
                        .universe(universe_size)
                        .participants(participants)
                        .advice_bits(b),
                )
                .max_rounds(64 * universe_size),
            )
            // Randomized, CD: Willard restricted to the advised ranges;
            // the paper's bound is on the expected rounds of the repeated
            // search, measured here as rounds conditioned on success
            // within the search budget (the protocol's horizon, used as
            // the default).
            .protocol(SweepProtocol::new(
                format!("rand-cd-b{b}"),
                ProtocolSpec::new("advised-willard")
                    .universe(universe_size)
                    .participants(participants)
                    .advice_bits(b),
            ));
    }
    let results = matrix.run()?;

    let mut rows = Vec::new();
    for b in 0..=max_bits {
        let cell = |label: String| {
            results
                .get("jitter", &label)
                .expect("the grid covers every advice budget")
        };
        let det = |label: String| det_rounds_from_stats(&label, &cell(label.clone()).stats);
        rows.push(Table2Row {
            advice_bits: b,
            theory_det_no_cd: (universe_size as f64) / 2f64.powi(b as i32),
            det_no_cd_rounds: det(format!("det-no-cd-b{b}"))?,
            theory_det_cd: (log_n - b as f64).max(1.0),
            det_cd_rounds: det(format!("det-cd-b{b}"))?,
            theory_rand_no_cd: (log_n / 2f64.powi(b as i32)).max(1.0),
            rand_no_cd_rounds: cell(format!("rand-no-cd-b{b}")).stats.mean_rounds_overall(),
            theory_rand_cd: (log_log_n - b as f64).max(1.0),
            rand_cd_rounds: cell(format!("rand-cd-b{b}"))
                .stats
                .mean_rounds_when_resolved(),
        });
    }
    Ok(Table2Result {
        universe_size,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_inputs() {
        let config = RunnerConfig::with_trials(10).single_threaded();
        assert!(run(10, 4, &config).is_err());
        assert!(run(64, 1, &config).is_err());
        assert!(run(64, 100, &config).is_err());
    }

    #[test]
    fn table2_shapes_match_the_paper() {
        let config = RunnerConfig::with_trials(150).seeded(5);
        let n = 1 << 10;
        let result = run(n, 60, &config).unwrap();
        assert_eq!(result.rows.len(), 11);

        for row in &result.rows {
            // Deterministic bounds are worst-case guarantees: the measured
            // rounds never exceed the theory column (within +1 slack for
            // ceilings).
            assert!(
                row.det_no_cd_rounds <= row.theory_det_no_cd + 1.0,
                "b={}: det no-CD {} > {}",
                row.advice_bits,
                row.det_no_cd_rounds,
                row.theory_det_no_cd
            );
            assert!(
                row.det_cd_rounds <= row.theory_det_cd + 1.0,
                "b={}: det CD {} > {}",
                row.advice_bits,
                row.det_cd_rounds,
                row.theory_det_cd
            );
        }

        // More advice never hurts (monotone non-increasing measured rounds,
        // allowing small statistical noise for the randomized rows).
        let first = &result.rows[0];
        let last = result.rows.last().unwrap();
        assert!(last.det_no_cd_rounds <= first.det_no_cd_rounds);
        assert!(last.det_cd_rounds <= first.det_cd_rounds);
        assert!(last.rand_no_cd_rounds <= first.rand_no_cd_rounds + 1.0);

        let md = result.to_table().to_markdown();
        assert!(md.contains("Table 2"));
    }
}
