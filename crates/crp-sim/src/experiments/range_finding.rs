//! Experiment F-RF: numerical verification of the lower-bound machinery.
//!
//! The paper's lower bounds (Theorems 2.4 and 2.8) rest on two reductions:
//!
//! 1. a contention-resolution algorithm induces a range-finding strategy
//!    whose expected complexity is at most twice the algorithm's
//!    (Lemmas 2.7 and 2.11);
//! 2. a range-finding strategy yields a uniquely decodable code whose
//!    expected length the Source Coding Theorem lower-bounds by the
//!    entropy of the target distribution (Lemmas 2.5 and 2.9).
//!
//! This experiment builds both constructions from real protocols and
//! checks the resulting inequalities for every scenario in the library.

use crp_predict::ScenarioLibrary;
use crp_protocols::rangefinding::{
    rf_construction, target_distance_expected_length, RangeFindingTree,
};
use crp_protocols::{Decay, SortedGuess, Willard};

use crate::report::{fmt_f64, Table};
use crate::sweep::SweepMatrix;
use crate::SimError;

/// One scenario row of the lower-bound verification.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeFindingRow {
    /// Scenario name.
    pub scenario: String,
    /// Condensed entropy `H(c(X))`.
    pub entropy: f64,
    /// Expected range-finding steps of the RF-Construction applied to the
    /// sorted-guess protocol built from the same distribution.
    pub sequence_expected_steps: f64,
    /// Expected target-distance code length of that sequence (bits).
    pub sequence_expected_code_bits: f64,
    /// Expected solving depth of the range-finding tree built from
    /// Willard's collision-detection strategy.
    pub tree_expected_depth: f64,
    /// The Lemma 2.9 lower bound instantiated with the tolerance actually
    /// used: `H − (⌈log(2·tol + 1)⌉ + 1)`.  At paper scale the subtracted
    /// term is `O(log log log log n)`; at laptop scale it is a small
    /// explicit constant, which keeps the inequality checkable rather than
    /// hiding it behind asymptotic notation.
    pub tree_lower_bound: f64,
}

/// Result of the verification experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeFindingResult {
    /// Maximum network size.
    pub max_size: usize,
    /// One row per scenario.
    pub rows: Vec<RangeFindingRow>,
}

impl RangeFindingResult {
    /// Renders the verification as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("Lower-bound machinery verification (n = {})", self.max_size),
            &[
                "scenario",
                "H(c(X))",
                "RF sequence E[steps]",
                "E[code bits]",
                "RF tree E[depth]",
                "H - log(2 tol + 1) - 1",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.scenario.clone(),
                fmt_f64(row.entropy),
                fmt_f64(row.sequence_expected_steps),
                fmt_f64(row.sequence_expected_code_bits),
                fmt_f64(row.tree_expected_depth),
                fmt_f64(row.tree_lower_bound),
            ]);
        }
        table
    }
}

/// Runs the verification for networks of maximum size `max_size`.
///
/// # Errors
///
/// Returns [`SimError`] if the scenario library or a protocol cannot be
/// constructed.
pub fn run(max_size: usize) -> Result<RangeFindingResult, SimError> {
    let library = ScenarioLibrary::new(max_size)?;
    let log_log_n = (max_size as f64).log2().log2().max(1.0);
    let tolerance = log_log_n.ceil() as usize;
    let willard = Willard::new(max_size)?;
    let decay = Decay::new(max_size)?;

    // This experiment is analytic (it evaluates the lower-bound reductions
    // in closed form rather than running trials), but its scenario grid is
    // still declared through the same matrix as the Monte-Carlo sweeps.
    let matrix = SweepMatrix::new().scenarios(library.all());

    let mut rows = Vec::new();
    for scenario in matrix.scenario_axis() {
        let condensed = scenario.condensed();

        // No-CD reduction: RF-Construction applied to the sorted-guess
        // protocol built for this very distribution (plus decay's sweep so
        // the sequence covers every range even for one-shot passes).
        let sorted = SortedGuess::new(&condensed);
        let horizon = sorted.pass_length().max(1) + 2 * decay.sweep_length();
        let sequence = rf_construction(&sorted.clone().cycling(), max_size, horizon);
        let penalty_steps = 4 * sequence.len().max(1);
        let expected_steps = sequence.expected_steps(&condensed, tolerance, penalty_steps);
        let expected_code_bits = target_distance_expected_length(
            &sequence,
            &condensed,
            tolerance,
            2 * (penalty_steps as f64).log2().ceil() as usize,
        );

        // CD reduction: the range-finding tree of Willard's strategy.  The
        // collision-detection argument uses the tighter tolerance
        // Θ(log log log n); the Lemma 2.9 inequality with explicit
        // constants is  E[depth] ≥ H − (⌈log(2·tol + 1)⌉ + 1).
        let cd_tolerance = log_log_n.log2().ceil().max(1.0) as usize;
        let tree = RangeFindingTree::from_strategy(&willard, max_size, 2 * tolerance);
        let tree_depth = tree.expected_depth(&condensed, cd_tolerance, 4 * tree.depth());
        let tolerance_bits = ((2 * cd_tolerance + 1) as f64).log2().ceil() + 1.0;

        rows.push(RangeFindingRow {
            scenario: scenario.name().to_string(),
            entropy: condensed.entropy(),
            sequence_expected_steps: expected_steps,
            sequence_expected_code_bits: expected_code_bits,
            tree_expected_depth: tree_depth,
            tree_lower_bound: condensed.entropy() - tolerance_bits,
        });
    }
    Ok(RangeFindingResult { max_size, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_coding_inequalities_hold_for_every_scenario() {
        let result = run(1 << 14).unwrap();
        assert_eq!(result.rows.len(), 6);
        for row in &result.rows {
            // Lemma 2.5's engine: the target-distance code is uniquely
            // decodable, so its expected length is at least the entropy
            // minus the per-symbol overhead slack of one bit.
            assert!(
                row.sequence_expected_code_bits + 1.0 + 1e-9 >= row.entropy,
                "{}: code bits {} < H {}",
                row.scenario,
                row.sequence_expected_code_bits,
                row.entropy
            );
            // Lemma 2.9's shape: the tree's expected depth is at least
            // H minus the quadruple-log term.
            assert!(
                row.tree_expected_depth + 1e-9 >= row.tree_lower_bound,
                "{}: tree depth {} < bound {}",
                row.scenario,
                row.tree_expected_depth,
                row.tree_lower_bound
            );
            // Expected range-finding steps are at least 1.
            assert!(row.sequence_expected_steps >= 1.0 - 1e-9);
        }
        assert!(result.to_table().to_markdown().contains("Lower-bound"));
    }
}
