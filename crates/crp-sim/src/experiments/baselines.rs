//! Experiment F-BASELINE: prediction-augmented protocols against the
//! classical baselines.
//!
//! The paper's motivation is the gap between the worst-case bounds
//! (`Θ(log n)` for decay without collision detection, `Θ(log log n)` for
//! Willard with it) and the `O(1)` rounds achievable with a correct size
//! estimate.  This experiment sweeps the universe size and measures, under
//! an informative ground-truth distribution with accurate predictions,
//! where the prediction-augmented algorithms land between those extremes.

use crp_info::SizeDistribution;
use crp_predict::{Scenario, ScenarioLibrary};
use crp_protocols::ProtocolSpec;

use crate::report::{fmt_f64, Table};
use crate::runner::RunnerConfig;
use crate::sweep::{SweepMatrix, SweepPopulation, SweepProtocol};
use crate::SimError;

/// Measurements for one universe size.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselinePoint {
    /// Universe size `n`.
    pub universe_size: usize,
    /// Expected rounds of decay (no CD, no predictions).
    pub decay_rounds: f64,
    /// Expected rounds of the cycling sorted-guess algorithm with accurate
    /// predictions (no CD).
    pub sorted_guess_rounds: f64,
    /// Mean resolved rounds of Willard's search (CD, no predictions).
    pub willard_rounds: f64,
    /// Mean resolved rounds of coded search with accurate predictions (CD).
    pub coded_search_rounds: f64,
    /// Expected rounds with a perfect size estimate (the `O(1)` floor).
    pub known_size_rounds: f64,
}

/// Result of the baseline comparison sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineResult {
    /// One point per universe size.
    pub points: Vec<BaselinePoint>,
}

impl BaselineResult {
    /// Renders the sweep as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            "Baselines vs prediction-augmented protocols",
            &[
                "n",
                "decay",
                "sorted-guess",
                "willard",
                "coded-search",
                "known-size",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.universe_size.to_string(),
                fmt_f64(p.decay_rounds),
                fmt_f64(p.sorted_guess_rounds),
                fmt_f64(p.willard_rounds),
                fmt_f64(p.coded_search_rounds),
                fmt_f64(p.known_size_rounds),
            ]);
        }
        table
    }
}

/// Runs the baseline comparison over the given universe sizes.
///
/// # Errors
///
/// Returns [`SimError`] if a distribution or protocol cannot be built.
/// The universe size a baseline scenario was generated for.
fn universe_of(scenario: &Scenario) -> usize {
    scenario.distribution().max_size()
}

/// The bimodal workload's primary mode at universe size `n`.
fn primary_mode(n: usize) -> usize {
    (n / 32).max(2)
}

/// Runs the baseline comparison over the given universe sizes on the
/// shard backend `config` selects.
///
/// # Errors
///
/// Returns [`SimError`] if a distribution or protocol cannot be built.
pub fn run(universe_sizes: &[usize], config: &RunnerConfig) -> Result<BaselineResult, SimError> {
    // The scenario axis is the bimodal workload regenerated at each
    // universe size (labelled by `n`); the protocol axis holds the two
    // classical baselines, the two prediction-augmented algorithms, and
    // the known-size floor.
    let mut matrix = SweepMatrix::new()
        .protocol(
            SweepProtocol::from_scenario("decay", |s| {
                ProtocolSpec::new("decay").universe(universe_of(s))
            })
            .max_rounds_with(|s| Some(64 * universe_of(s))),
        )
        .protocol(
            SweepProtocol::from_scenario("sorted-guess", |s| {
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(universe_of(s))
                    .prediction(s.advice_condensed())
            })
            .max_rounds_with(|s| Some(64 * universe_of(s))),
        )
        // The CD protocols' round budgets default to their horizons
        // (Willard's worst-case search length, coded search's phase sum).
        .protocol(SweepProtocol::from_scenario("willard", |s| {
            ProtocolSpec::new("willard").universe(universe_of(s))
        }))
        .protocol(SweepProtocol::from_scenario("coded-search", |s| {
            ProtocolSpec::new("coded-search")
                .universe(universe_of(s))
                .prediction(s.advice_condensed())
        }))
        // The O(1) floor: a fresh known-size protocol per trial would need
        // the sampled k; instead measure it at the distribution's primary
        // mode, which the bimodal scenario hits 85% of the time.
        .protocol(
            SweepProtocol::from_scenario("known-size", |s| {
                ProtocolSpec::new("fixed-probability")
                    .universe(universe_of(s))
                    .estimate(primary_mode(universe_of(s)))
            })
            .population_with(|s| {
                let n = universe_of(s);
                SweepPopulation::Distribution(
                    SizeDistribution::point_mass(n, primary_mode(n))
                        .expect("the primary mode is a valid size"),
                )
            })
            .max_rounds_with(|s| Some(64 * universe_of(s))),
        )
        .runner(config.clone());
    for &n in universe_sizes {
        let library = ScenarioLibrary::new(n)?;
        matrix = matrix.scenario(Scenario::new(
            format!("bimodal-{n}"),
            library.bimodal().distribution().clone(),
        ));
    }
    let results = matrix.run()?;

    let mut points = Vec::new();
    for &n in universe_sizes {
        let cell = |protocol: &str| {
            results
                .get(&format!("bimodal-{n}"), protocol)
                .expect("the grid covers every (size, protocol) pair")
        };
        points.push(BaselinePoint {
            universe_size: n,
            decay_rounds: cell("decay").stats.mean_rounds_overall(),
            sorted_guess_rounds: cell("sorted-guess").stats.mean_rounds_overall(),
            willard_rounds: cell("willard").stats.mean_rounds_when_resolved(),
            coded_search_rounds: cell("coded-search").stats.mean_rounds_when_resolved(),
            known_size_rounds: cell("known-size").stats.mean_rounds_overall(),
        });
    }
    Ok(BaselineResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_land_between_worst_case_and_known_size() {
        let config = RunnerConfig::with_trials(250).seeded(31);
        let result = run(&[1 << 10, 1 << 12], &config).unwrap();
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            // The informative prediction beats the no-prediction baseline in
            // the no-CD setting, and never does worse than ~the known-size
            // floor by construction of the scenario.
            assert!(
                p.sorted_guess_rounds <= p.decay_rounds,
                "n={}: sorted-guess {} vs decay {}",
                p.universe_size,
                p.sorted_guess_rounds,
                p.decay_rounds
            );
            assert!(p.known_size_rounds <= p.sorted_guess_rounds + 1.0);
            // CD: coded search with a sharp prediction is at least as fast
            // as Willard's blind search (both measured on resolved trials).
            assert!(p.coded_search_rounds <= p.willard_rounds + 1.0);
        }
        assert!(result.to_table().to_markdown().contains("Baselines"));
    }
}
