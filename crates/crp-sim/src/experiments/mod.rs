//! One module per table / figure reproduced from the paper.
//!
//! Each experiment exposes a `run` function returning a typed result with
//! one row per configuration, plus a `to_table` rendering used by the
//! `crp-experiments` binary and recorded in `EXPERIMENTS.md`.
//!
//! Every module declares its (protocol × scenario) grid through the
//! [`crate::SweepMatrix`] engine instead of hand-rolled nested loops: the
//! matrix compiles the axes to validated simulation cells, the
//! work-stealing sweep scheduler executes every cell's shards through the
//! [`crate::ShardBackend`] the supplied [`crate::RunnerConfig`] selects
//! (serial, scoped threads, or `shard-worker` subprocesses — statistics
//! are bit-identical across all three), and the module reshapes the
//! resulting grid into its paper-specific row type.
//!
//! | module | DESIGN.md experiment id | paper artefact |
//! |---|---|---|
//! | [`table1`] | T1-NCD, T1-CD | Table 1 (network-size predictions) |
//! | [`table2`] | T2-DET-NCD, T2-DET-CD, T2-RAND-NCD, T2-RAND-CD | Table 2 (perfect advice) |
//! | [`entropy_sweep`] | F-ENTROPY | rounds vs condensed entropy |
//! | [`kl_degradation`] | F-KL | rounds vs prediction divergence |
//! | [`baselines`] | F-BASELINE | predictions vs classical baselines |
//! | [`range_finding`] | F-RF | lower-bound machinery verification |

pub mod baselines;
pub mod entropy_sweep;
pub mod kl_degradation;
pub mod range_finding;
pub mod table1;
pub mod table2;
