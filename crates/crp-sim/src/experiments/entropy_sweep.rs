//! Experiment F-ENTROPY: rounds as a function of condensed entropy.
//!
//! The paper's Table 1 bounds are parameterised by `H = H(c(X))`: the §2.5
//! algorithm needs `Θ(2^{cH})` rounds (exponential in `H`), the §2.6
//! algorithm `Θ(H^c)` rounds (polynomial in `H`).  This experiment sweeps a
//! ladder of distributions whose entropy interpolates between 0 and
//! `log log n` (point mass mixed with uniform-over-ranges) and measures
//! both algorithms with accurate predictions, producing the series a
//! figure would plot.

use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;

use crate::report::{fmt_f64, Table};
use crate::runner::RunnerConfig;
use crate::sweep::{SweepMatrix, SweepProtocol};
use crate::SimError;

/// One entropy-ladder point.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropyPoint {
    /// Condensed entropy `H(c(X))` at this ladder step.
    pub entropy: f64,
    /// Mean rounds of the §2.5 (no-CD) algorithm over resolved trials.
    pub no_cd_rounds: f64,
    /// Success rate of the one-shot §2.5 pass.
    pub no_cd_success_rate: f64,
    /// Mean rounds of the §2.6 (CD) algorithm over resolved trials.
    pub cd_rounds: f64,
    /// Success rate of the one-shot §2.6 attempt.
    pub cd_success_rate: f64,
}

/// Result of the entropy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EntropySweepResult {
    /// Maximum network size.
    pub max_size: usize,
    /// Ladder points ordered by increasing entropy.
    pub points: Vec<EntropyPoint>,
}

impl EntropySweepResult {
    /// Renders the sweep as a markdown table (one row per ladder point).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("Entropy sweep (n = {})", self.max_size),
            &[
                "H(c(X))",
                "no-CD rounds",
                "no-CD success",
                "CD rounds",
                "CD success",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                fmt_f64(p.entropy),
                fmt_f64(p.no_cd_rounds),
                fmt_f64(p.no_cd_success_rate),
                fmt_f64(p.cd_rounds),
                fmt_f64(p.cd_success_rate),
            ]);
        }
        table
    }
}

/// Runs the entropy sweep with `steps` ladder points on the shard backend
/// `config` selects.
///
/// # Errors
///
/// Returns [`SimError`] if the scenario library or a protocol cannot be
/// constructed.
pub fn run(
    max_size: usize,
    steps: usize,
    config: &RunnerConfig,
) -> Result<EntropySweepResult, SimError> {
    let library = ScenarioLibrary::new(max_size)?;

    // The grid: the entropy ladder × both prediction-augmented algorithms
    // with accurate predictions and their own horizons as budgets.
    let matrix = SweepMatrix::new()
        .scenarios(library.entropy_ladder(steps.max(2)))
        .protocol(SweepProtocol::from_scenario("no-cd", |s| {
            ProtocolSpec::new("sorted-guess")
                .universe(s.distribution().max_size())
                .prediction(s.advice_condensed())
        }))
        .protocol(SweepProtocol::from_scenario("cd", |s| {
            ProtocolSpec::new("coded-search")
                .universe(s.distribution().max_size())
                .prediction(s.advice_condensed())
        }))
        .runner(config.clone());
    let results = matrix.run()?;

    let mut points = Vec::new();
    for scenario in matrix.scenario_axis() {
        let no_cd = results
            .get(scenario.name(), "no-cd")
            .expect("the grid covers every ladder step");
        let cd = results
            .get(scenario.name(), "cd")
            .expect("the grid covers every ladder step");
        points.push(EntropyPoint {
            entropy: no_cd.condensed_entropy,
            no_cd_rounds: no_cd.stats.mean_rounds_when_resolved(),
            no_cd_success_rate: no_cd.stats.success_rate(),
            cd_rounds: cd.stats.mean_rounds_when_resolved(),
            cd_success_rate: cd.stats.success_rate(),
        });
    }
    points.sort_by(|a, b| {
        a.entropy
            .partial_cmp(&b.entropy)
            .expect("entropy is finite")
    });
    Ok(EntropySweepResult { max_size, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_grow_with_entropy() {
        let config = RunnerConfig::with_trials(250).seeded(7);
        let result = run(1 << 12, 6, &config).unwrap();
        assert_eq!(result.points.len(), 6);
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(first.entropy < last.entropy);
        // Low-entropy predictions resolve in fewer rounds than high-entropy
        // ones for both algorithms.
        assert!(first.no_cd_rounds <= last.no_cd_rounds);
        assert!(first.cd_rounds <= last.cd_rounds);
        // Success probability stays at least a constant throughout (the
        // paper's 1/16 bound; we check a generous margin above it).
        for p in &result.points {
            assert!(p.no_cd_success_rate > 0.2, "{p:?}");
            assert!(p.cd_success_rate > 0.2, "{p:?}");
        }
        assert!(result.to_table().to_markdown().contains("Entropy sweep"));
    }
}
