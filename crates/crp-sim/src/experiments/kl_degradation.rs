//! Experiment F-KL: the cost of miscalibrated predictions.
//!
//! Theorems 2.12 and 2.16 price a wrong prediction `Y` through the
//! divergence `D = D_KL(c(X) ‖ c(Y))`: the no-CD algorithm needs
//! `O(2^{2H + 2D})` rounds, the CD algorithm `O((H + D)²)`.  This
//! experiment fixes a ground truth, generates predictions of increasing
//! divergence by mixing the truth toward the uniform distribution and by
//! shifting its support, and measures both algorithms under each
//! prediction.

use crp_info::SizeDistribution;
use crp_predict::{noise, Scenario};
use crp_protocols::ProtocolSpec;

use crate::report::{fmt_f64, Table};
use crate::runner::RunnerConfig;
use crate::sweep::{SweepMatrix, SweepProtocol};
use crate::SimError;

/// One prediction-quality point.
#[derive(Debug, Clone, PartialEq)]
pub struct KlPoint {
    /// Label of the noise configuration that produced the prediction.
    pub label: String,
    /// Divergence `D_KL(c(X) ‖ c(Y))` in bits.
    pub divergence: f64,
    /// Mean rounds of the cycling §2.5 algorithm (expected time to
    /// resolution).
    pub no_cd_rounds: f64,
    /// Mean rounds of the §2.6 algorithm over resolved trials.
    pub cd_rounds: f64,
    /// Success rate of the one-shot §2.6 attempt.
    pub cd_success_rate: f64,
}

/// Result of the divergence sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct KlSweepResult {
    /// Maximum network size.
    pub max_size: usize,
    /// Points ordered by increasing divergence.
    pub points: Vec<KlPoint>,
}

impl KlSweepResult {
    /// Renders the sweep as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("Prediction-divergence sweep (n = {})", self.max_size),
            &[
                "prediction",
                "D_KL(c(X)||c(Y))",
                "no-CD E[rounds]",
                "CD rounds",
                "CD success",
            ],
        );
        for p in &self.points {
            table.push_row(vec![
                p.label.clone(),
                fmt_f64(p.divergence),
                fmt_f64(p.no_cd_rounds),
                fmt_f64(p.cd_rounds),
                fmt_f64(p.cd_success_rate),
            ]);
        }
        table
    }
}

/// Runs the divergence sweep against a bimodal ground truth on the shard
/// backend `config` selects.
///
/// # Errors
///
/// Returns [`SimError`] if a distribution or protocol cannot be built.
pub fn run(max_size: usize, config: &RunnerConfig) -> Result<KlSweepResult, SimError> {
    let truth = SizeDistribution::bimodal(
        max_size,
        (max_size / 32).max(2),
        (max_size / 2).max(2),
        0.85,
    )?;

    // The scenario axis is a ladder of *advice* distributions of
    // increasing divergence over the same fixed ground truth: each step is
    // a drifted-advice scenario whose trials sample from the truth while
    // the protocols consult the (possibly wrong) prediction.
    let mut scenarios: Vec<Scenario> = vec![Scenario::new("exact", truth.clone())];
    for lambda in [0.25, 0.5, 0.75, 0.95] {
        scenarios.push(Scenario::with_advice(
            format!("mixed-{lambda}"),
            truth.clone(),
            noise::towards_uniform(&truth, lambda)?,
        ));
    }
    for shift in [1i32, 2, 3] {
        scenarios.push(Scenario::with_advice(
            format!("shift-{shift}"),
            truth.clone(),
            noise::support_shift(&truth, shift)?,
        ));
    }

    let matrix = SweepMatrix::new()
        .scenarios(scenarios)
        .protocol(
            // Expected time of the cycling no-CD strategy built from the
            // prediction, run against the truth.
            SweepProtocol::from_scenario("no-cd", |s| {
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(s.distribution().max_size())
                    .prediction(s.advice_condensed())
            })
            .max_rounds_with(|s| Some(64 * s.advice_condensed().num_ranges().max(1))),
        )
        .protocol(SweepProtocol::from_scenario("cd", |s| {
            ProtocolSpec::new("coded-search")
                .universe(s.distribution().max_size())
                .prediction(s.advice_condensed())
        }))
        .runner(config.clone());
    let results = matrix.run()?;

    let mut points = Vec::new();
    for scenario in matrix.scenario_axis() {
        let no_cd = results
            .get(scenario.name(), "no-cd")
            .expect("the grid covers every prediction");
        let cd = results
            .get(scenario.name(), "cd")
            .expect("the grid covers every prediction");
        points.push(KlPoint {
            label: scenario.name().to_string(),
            divergence: no_cd.advice_divergence,
            no_cd_rounds: no_cd.stats.mean_rounds_overall(),
            cd_rounds: cd.stats.mean_rounds_when_resolved(),
            cd_success_rate: cd.stats.success_rate(),
        });
    }
    points.sort_by(|a, b| {
        a.divergence
            .partial_cmp(&b.divergence)
            .expect("divergences are finite for these noise models")
    });
    Ok(KlSweepResult { max_size, points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worse_predictions_cost_more_rounds() {
        let config = RunnerConfig::with_trials(250).seeded(23);
        let result = run(1 << 12, &config).unwrap();
        assert!(result.points.len() >= 6);

        let exact = result.points.iter().find(|p| p.label == "exact").unwrap();
        assert!(exact.divergence < 1e-9);

        let worst = result
            .points
            .iter()
            .max_by(|a, b| a.divergence.partial_cmp(&b.divergence).unwrap())
            .unwrap();
        assert!(
            worst.divergence > 0.5,
            "worst divergence {}",
            worst.divergence
        );
        assert!(
            exact.no_cd_rounds < worst.no_cd_rounds,
            "exact {} vs worst {}",
            exact.no_cd_rounds,
            worst.no_cd_rounds
        );
        assert!(result.to_table().to_markdown().contains("divergence"));
    }
}
