//! Experiment T1: reproduces the paper's Table 1 empirically.
//!
//! Table 1 states, for a network-size random variable `X` with condensed
//! entropy `H = H(c(X))`:
//!
//! * no collision detection — lower bound `Ω(2^H / log log n)` expected
//!   rounds, upper bound `O(2^{2H})` rounds with constant probability
//!   (achieved by the registry's `sorted-guess` protocol);
//! * collision detection — lower bound `H/2 − O(log log log log n)`,
//!   upper bound `O(H²)` rounds with constant probability (achieved by
//!   `coded-search`).
//!
//! For every scenario in the library the experiment measures both
//! algorithms with *accurate* predictions (`Y = X`) and reports the
//! measured constant-probability round count next to the theory columns,
//! so the table's shape (exponential in `H` without collision detection,
//! polynomial in `H` with it) can be checked directly.

use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;

use crate::report::{fmt_f64, Table};
use crate::runner::RunnerConfig;
use crate::sweep::{SweepMatrix, SweepProtocol};
use crate::SimError;

/// One scenario row of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Scenario name.
    pub scenario: String,
    /// Condensed entropy `H(c(X))` of the scenario.
    pub entropy: f64,
    /// Theory column: `2^H / log log n` (no-CD lower-bound shape).
    pub theory_no_cd_lower: f64,
    /// Theory column: `2^{2H}` (no-CD upper-bound shape).
    pub theory_no_cd_upper: f64,
    /// Measured: success rate of the one-shot SortedGuess pass.
    pub no_cd_success_rate: f64,
    /// Measured: mean rounds of SortedGuess over resolved trials.
    pub no_cd_rounds: f64,
    /// Theory column: `H/2` (CD lower-bound shape).
    pub theory_cd_lower: f64,
    /// Theory column: `H²` (CD upper-bound shape, plus 1 so the point-mass
    /// row is non-degenerate).
    pub theory_cd_upper: f64,
    /// Measured: success rate of the one-shot CodedSearch attempt.
    pub cd_success_rate: f64,
    /// Measured: mean rounds of CodedSearch over resolved trials.
    pub cd_rounds: f64,
}

/// Result of the Table 1 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Result {
    /// Maximum network size `n` the scenarios were generated for.
    pub max_size: usize,
    /// One row per scenario.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Renders the result as a markdown table.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!("Table 1 reproduction (n = {})", self.max_size),
            &[
                "scenario",
                "H(c(X))",
                "2^H/loglog n",
                "2^2H",
                "no-CD success",
                "no-CD rounds",
                "H/2",
                "H^2",
                "CD success",
                "CD rounds",
            ],
        );
        for row in &self.rows {
            table.push_row(vec![
                row.scenario.clone(),
                fmt_f64(row.entropy),
                fmt_f64(row.theory_no_cd_lower),
                fmt_f64(row.theory_no_cd_upper),
                fmt_f64(row.no_cd_success_rate),
                fmt_f64(row.no_cd_rounds),
                fmt_f64(row.theory_cd_lower),
                fmt_f64(row.theory_cd_upper),
                fmt_f64(row.cd_success_rate),
                fmt_f64(row.cd_rounds),
            ]);
        }
        table
    }
}

/// Runs the Table 1 reproduction for networks of maximum size `max_size`
/// on the shard backend `config` selects.
///
/// # Errors
///
/// Returns [`SimError`] if the scenario library or a protocol cannot be
/// constructed (e.g. `max_size < 8`).
pub fn run(max_size: usize, config: &RunnerConfig) -> Result<Table1Result, SimError> {
    let library = ScenarioLibrary::new(max_size)?;
    let log_log_n = (max_size as f64).log2().log2().max(1.0);

    // The grid: every library scenario × the two prediction-augmented
    // upper-bound algorithms, with accurate predictions (the scenario's own
    // advice) and the protocols' own horizons as round budgets.
    let matrix = SweepMatrix::new()
        .scenarios(library.all())
        .protocol(SweepProtocol::from_scenario("no-cd", |s| {
            ProtocolSpec::new("sorted-guess")
                .universe(s.distribution().max_size())
                .prediction(s.advice_condensed())
        }))
        .protocol(SweepProtocol::from_scenario("cd", |s| {
            ProtocolSpec::new("coded-search")
                .universe(s.distribution().max_size())
                .prediction(s.advice_condensed())
        }))
        .runner(config.clone());
    let results = matrix.run()?;

    let mut rows = Vec::new();
    for scenario in matrix.scenario_axis() {
        let no_cd = results
            .get(scenario.name(), "no-cd")
            .expect("the grid covers every scenario");
        let cd = results
            .get(scenario.name(), "cd")
            .expect("the grid covers every scenario");
        let entropy = no_cd.condensed_entropy;
        rows.push(Table1Row {
            scenario: scenario.name().to_string(),
            entropy,
            theory_no_cd_lower: 2f64.powf(entropy) / log_log_n,
            theory_no_cd_upper: 2f64.powf(2.0 * entropy),
            no_cd_success_rate: no_cd.stats.success_rate(),
            no_cd_rounds: no_cd.stats.mean_rounds_when_resolved(),
            theory_cd_lower: entropy / 2.0,
            theory_cd_upper: entropy * entropy + 1.0,
            cd_success_rate: cd.stats.success_rate(),
            cd_rounds: cd.stats.mean_rounds_when_resolved(),
        });
    }
    Ok(Table1Result { max_size, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_the_paper() {
        let config = RunnerConfig::with_trials(300).seeded(42);
        let result = run(1 << 12, &config).unwrap();
        assert_eq!(result.rows.len(), 6);

        // Every scenario must resolve with at least the paper's constant
        // probability (1/16 for no-CD; we allow a generous margin above it).
        for row in &result.rows {
            assert!(
                row.no_cd_success_rate > 0.2,
                "{}: no-CD success rate {}",
                row.scenario,
                row.no_cd_success_rate
            );
            assert!(
                row.cd_success_rate > 0.2,
                "{}: CD success rate {}",
                row.scenario,
                row.cd_success_rate
            );
        }

        // The zero-entropy scenario resolves essentially immediately, the
        // maximum-entropy scenario takes longer — the Table 1 ordering.
        // The CD gap is wide (≈2 vs ≈3.5 rounds) and asserted strictly;
        // the no-CD comparison conditions on *resolved* trials of a
        // one-shot pass, which compresses the gap to statistical noise, so
        // it gets a unit of slack.
        let point = result
            .rows
            .iter()
            .find(|r| r.scenario == "point-mass")
            .unwrap();
        let uniform = result
            .rows
            .iter()
            .find(|r| r.scenario == "uniform-ranges")
            .unwrap();
        assert!(point.entropy < 0.01);
        assert!(uniform.entropy > 3.0);
        assert!(
            point.no_cd_rounds <= uniform.no_cd_rounds + 1.0,
            "point {} vs uniform {}",
            point.no_cd_rounds,
            uniform.no_cd_rounds
        );
        assert!(
            point.cd_rounds < uniform.cd_rounds,
            "point {} vs uniform {}",
            point.cd_rounds,
            uniform.cd_rounds
        );

        let md = result.to_table().to_markdown();
        assert!(md.contains("Table 1"));
        assert!(md.contains("point-mass"));
    }
}
