//! Plain-text / markdown rendering of experiment results.

/// A simple column-aligned table that renders to GitHub-flavoured markdown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.  Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as RFC-4180-style CSV (header row first; fields
    /// containing commas, quotes or newlines are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(field: &str) -> String {
            if field.contains(',') || field.contains('"') || field.contains('\n') {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt_f64(value: f64) -> String {
    if value.is_nan() {
        "—".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut table = Table::new("Demo", &["a", "b"]);
        assert!(table.is_empty());
        table.push_row(vec!["1".into(), "2".into()]);
        table.push_row(vec!["3".into()]);
        assert_eq!(table.len(), 2);
        assert_eq!(table.title(), "Demo");
        let md = table.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("| 3 |  |"));
    }

    #[test]
    fn table_renders_csv_with_escaping() {
        let mut table = Table::new("Demo", &["name", "value"]);
        table.push_row(vec!["plain".into(), "1".into()]);
        table.push_row(vec!["with,comma".into(), "say \"hi\"".into()]);
        let csv = table.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(f64::NAN), "—");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(12345.6), "12346");
    }
}
