//! End-to-end acceptance of the sweep service: a real `SweepServer`
//! over loopback TCP, dispatching to real `crp_experiments worker`
//! subprocesses, with the content-addressed result cache in the middle.
//!
//! The criteria under test:
//!
//! * a submission's statistics are **bit-identical** to a local
//!   `SerialBackend` run of the same matrix;
//! * a resubmission settles 100% from the cache — zero fleet work —
//!   and is again bit-identical;
//! * a corrupt cache entry is rejected (typed error inside, never a
//!   panic), recomputed, healed, and the result still does not move by
//!   a bit;
//! * overlapping sweeps only compute their new cells.

use crp_fleet::WorkerEndpoint;
use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;
use crp_serve::{ResultCache, ServeClient, SweepServer};
use crp_sim::service::{compile_submission, submit_matrix, sweep_hooks};
use crp_sim::{SerialBackend, SweepMatrix, SweepProtocol};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_crp_experiments");

fn worker_endpoints(workers: usize) -> Vec<WorkerEndpoint> {
    (0..workers)
        .map(|_| {
            WorkerEndpoint::local(
                WORKER_BIN,
                vec!["worker".to_string(), "--stdio".to_string()],
            )
        })
        .collect()
}

fn demo_matrix() -> SweepMatrix {
    let library = ScenarioLibrary::new(256).unwrap();
    SweepMatrix::new()
        .scenarios([library.bimodal(), library.adversarial_drift()])
        .protocol(
            SweepProtocol::from_scenario("decay", |s| {
                ProtocolSpec::new("decay").universe(s.distribution().max_size())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        )
        .protocol(
            SweepProtocol::from_scenario("sorted-guess", |s| {
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(s.distribution().max_size())
                    .prediction(s.advice_condensed())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        )
        .trials(300)
        .seed(0xCAFE)
}

#[test]
fn service_results_are_bit_identical_cached_and_self_healing() {
    let cache_dir =
        std::env::temp_dir().join(format!("crp-sweep-service-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = ResultCache::open(&cache_dir).unwrap();
    let server =
        SweepServer::bind("127.0.0.1:0", worker_endpoints(2), Some(cache.clone())).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let daemon = std::thread::spawn(move || server.serve(sweep_hooks()));

    let matrix = demo_matrix();
    let reference = matrix.run_on(&SerialBackend).unwrap();

    // Cold: everything computed on the fleet, results bit-identical to
    // the local serial run.
    let (results, outcome) = submit_matrix(&addr, &matrix, |_, _, _| {}).unwrap();
    assert_eq!(reference, results, "service run diverged from serial");
    assert_eq!(outcome.jobs_total, 8, "4 cells x 2 shards");
    assert_eq!(outcome.job_hits, 0);
    assert_eq!(outcome.computed, 8);

    // Warm: 100% cache hits, zero fleet work, still bit-identical.
    let mut progress_hits = 0;
    let (results, outcome) = submit_matrix(&addr, &matrix, |_, _, hits| {
        progress_hits = hits;
    })
    .unwrap();
    assert_eq!(reference, results, "cache hits diverged from serial");
    assert_eq!(outcome.job_hits, outcome.jobs_total);
    assert_eq!(outcome.computed, 0);
    assert_eq!(progress_hits, outcome.jobs_total);
    assert!(outcome.cells.iter().all(|cell| cell.cached));

    // Vandalise the first cell's cache entry and one of its job
    // entries: the service must detect the corruption, recompute
    // exactly the corrupted job, heal the entries, and return the same
    // bits as ever.
    let (submission, _) = compile_submission(&matrix).unwrap();
    for key in [&submission.cells[0].hash, &submission.cells[0].jobs[0].hash] {
        let path = cache_dir.join(&key[..2]).join(format!("{key}.crp"));
        std::fs::write(&path, b"crp-cache v1\nvandalised").unwrap();
        assert!(
            matches!(
                cache.get(key),
                Err(crp_serve::ServeError::CorruptCache { .. })
            ),
            "the vandalised entry must surface as a typed corruption error"
        );
    }
    let (results, outcome) = submit_matrix(&addr, &matrix, |_, _, _| {}).unwrap();
    assert_eq!(reference, results, "recomputed cell diverged");
    assert_eq!(outcome.computed, 1, "only the corrupted job recomputes");
    assert!(cache.get(&submission.cells[0].hash).unwrap().is_some());

    // Overlap: two old cells plus two new ones (different seed) — only
    // the new cells' jobs run.
    let overlapping = demo_matrix().seed(0xBEEF);
    let overlap_reference = overlapping.run_on(&SerialBackend).unwrap();
    let (results, outcome) = submit_matrix(&addr, &overlapping, |_, _, _| {}).unwrap();
    assert_eq!(overlap_reference, results);
    assert_eq!(outcome.job_hits, 0, "a new seed shares no jobs");
    let (_, outcome) = submit_matrix(&addr, &overlapping, |_, _, _| {}).unwrap();
    assert_eq!(outcome.job_hits, outcome.jobs_total);

    ServeClient::connect(addr.as_str())
        .unwrap()
        .shutdown_server()
        .unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
