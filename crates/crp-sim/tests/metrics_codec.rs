//! Property tests for the `MetricsSnapshot` wire codec — the body of a
//! fleet `metrics-report` frame.
//!
//! Mirrors `tests/wire_codec.rs`: seeded random snapshots round-trip
//! bit-exactly, re-encoding a decoded body reproduces the input bytes,
//! and every truncation or corruption of a valid body is rejected.
//! Histogram scalars travel as raw `{:016x}` bit patterns, so the edge
//! cases here push IEEE-754 patterns (signed zeros, subnormals,
//! infinities) through `f64::to_bits` and demand byte-exact survival.

use crp_obs::{MetricsRegistry, MetricsSnapshot};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a random registry snapshot: a few counters, gauges spanning
/// the i64 range, and histograms whose observations cover the full u64
/// magnitude spectrum (so bucket indices, sums and extrema all vary).
fn random_snapshot(rng: &mut ChaCha8Rng) -> MetricsSnapshot {
    let registry = MetricsRegistry::new();
    for i in 0..rng.gen_range(0usize..6) {
        registry.add(
            &format!("counter.{i}"),
            rng.gen::<u64>() >> rng.gen_range(0u32..64),
        );
    }
    for i in 0..rng.gen_range(0usize..5) {
        registry
            .gauge(&format!("gauge.{i}"))
            .set(rng.gen::<u64>() as i64);
    }
    for i in 0..rng.gen_range(0usize..4) {
        let name = format!("histogram.{i}");
        for _ in 0..rng.gen_range(0usize..40) {
            registry.observe(&name, rng.gen::<u64>() >> rng.gen_range(0u32..64));
        }
        if rng.gen_bool(0.2) {
            // A touched-but-empty histogram still appears in the snapshot.
            let _ = registry.histogram(&name);
        }
    }
    registry.snapshot()
}

#[test]
fn random_snapshots_round_trip_bit_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0B5E);
    for _ in 0..200 {
        let snapshot = random_snapshot(&mut rng);
        let body = snapshot.encode();
        let decoded = MetricsSnapshot::decode(&body).expect("encoded snapshot decodes");
        assert_eq!(decoded, snapshot, "decode(encode(s)) == s");
        assert_eq!(
            decoded.encode(),
            body,
            "re-encoding a decoded body is byte-identical"
        );
    }
}

#[test]
fn awkward_float_bit_patterns_survive_histogram_scalars() {
    // Histogram sums/extrema are u64 on the wire; feeding f64 bit
    // patterns through `to_bits` exercises the values a metrics
    // producer would ship for float-valued observations.
    let edges: [(f64, &str); 6] = [
        (0.0, "+0.0"),
        (-0.0, "-0.0"),
        (5e-324, "min positive subnormal"),
        (-5e-324, "min negative subnormal"),
        (f64::INFINITY, "+inf"),
        (f64::NEG_INFINITY, "-inf"),
    ];
    for (value, label) in edges {
        let registry = MetricsRegistry::new();
        registry.observe("edge", value.to_bits());
        let snapshot = registry.snapshot();
        let decoded = MetricsSnapshot::decode(&snapshot.encode()).expect("edge snapshot decodes");
        let histogram = decoded.histogram("edge").expect("histogram present");
        assert_eq!(
            histogram.sum,
            value.to_bits(),
            "bit pattern of {label} survives the sum scalar"
        );
        assert_eq!(histogram.min, value.to_bits(), "{label} survives min");
        assert_eq!(histogram.max, value.to_bits(), "{label} survives max");
        assert_eq!(
            f64::from_bits(histogram.sum).to_bits(),
            value.to_bits(),
            "{label} reconstitutes to the same float"
        );
        assert_eq!(decoded, snapshot, "{label} snapshot round-trips");
    }
}

#[test]
fn empty_snapshot_has_the_canonical_five_line_body() {
    let snapshot = MetricsRegistry::default().snapshot();
    let body = snapshot.encode();
    assert_eq!(
        body,
        "crp-metrics-snapshot v1\ncounters 0\ngauges 0\nhistograms 0\nend\n"
    );
    let decoded = MetricsSnapshot::decode(&body).expect("empty snapshot decodes");
    assert_eq!(decoded, snapshot);
}

/// A representative non-trivial body used by the rejection tests.
fn busy_body() -> String {
    let registry = MetricsRegistry::new();
    registry.add("jobs", 41);
    registry.inc("jobs");
    registry.inc("hits");
    registry.gauge("depth").set(-3);
    registry.gauge("pool").set(i64::MAX);
    for value in [0, 1, 63, 4096, u64::MAX, (-0.0f64).to_bits()] {
        registry.observe("latency", value);
    }
    registry.observe("bytes", 1 << 20);
    registry.snapshot().encode()
}

#[test]
fn truncation_at_every_line_is_rejected() {
    let body = busy_body();
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() > 10, "busy body should be multi-section");
    for keep in 0..lines.len() {
        let mut truncated: String = lines[..keep].join("\n");
        truncated.push('\n');
        assert!(
            MetricsSnapshot::decode(&truncated).is_err(),
            "truncation after {keep} lines must be rejected"
        );
    }
}

#[test]
fn trailing_content_after_end_is_rejected() {
    let mut body = busy_body();
    body.push_str("counter extra 1\n");
    assert!(MetricsSnapshot::decode(&body).is_err());
}

#[test]
fn corrupt_hex_scalars_are_rejected() {
    let body = busy_body();
    let hex_token = body
        .lines()
        .find_map(|line| {
            line.strip_prefix("histogram ")
                .and_then(|rest| rest.split(' ').nth(1))
        })
        .expect("busy body has a histogram scalar")
        .to_string();
    for bad in [
        "zzzzzzzzzzzzzzzz",
        "00000000DEADBEEF",
        "0000000000000abc0",
        "abc",
    ] {
        let corrupted = body.replacen(&hex_token, bad, 1);
        assert_ne!(corrupted, body, "replacement must change the body");
        assert!(
            MetricsSnapshot::decode(&corrupted).is_err(),
            "hex scalar {bad:?} must be rejected"
        );
    }
}

#[test]
fn duplicate_and_malformed_entries_are_rejected() {
    let cases = [
        // Wrong header.
        "crp-metrics-snapshot v2\ncounters 0\ngauges 0\nhistograms 0\nend\n",
        // Duplicate counter name.
        "crp-metrics-snapshot v1\ncounters 2\ncounter a 1\ncounter a 2\n\
         gauges 0\nhistograms 0\nend\n",
        // Bucket index out of order.
        "crp-metrics-snapshot v1\ncounters 0\ngauges 0\nhistograms 1\n\
         histogram h 0000000000000002 0000000000000003 0000000000000001 \
         0000000000000002 buckets 2\nbucket 5 1\nbucket 3 1\nend\n",
        // Zero bucket count must be omitted, not written.
        "crp-metrics-snapshot v1\ncounters 0\ngauges 0\nhistograms 1\n\
         histogram h 0000000000000000 0000000000000000 0000000000000000 \
         0000000000000000 buckets 1\nbucket 0 0\nend\n",
        // Negative counter value.
        "crp-metrics-snapshot v1\ncounters 1\ncounter a -1\n\
         gauges 0\nhistograms 0\nend\n",
    ];
    for body in cases {
        assert!(
            MetricsSnapshot::decode(body).is_err(),
            "body must be rejected: {body:?}"
        );
    }
}

#[test]
fn merge_sums_counters_maxes_gauges_and_adds_histograms() {
    let a = {
        let registry = MetricsRegistry::new();
        registry.add("jobs", 10);
        registry.gauge("depth").set(4);
        registry.observe("latency", 100);
        registry.snapshot()
    };
    let b = {
        let registry = MetricsRegistry::new();
        registry.add("jobs", 5);
        registry.inc("hits");
        registry.gauge("depth").set(2);
        registry.observe("latency", 7);
        registry.snapshot()
    };
    let mut merged = a.clone();
    merged.merge(&b);
    assert_eq!(merged.counter("jobs"), 15);
    assert_eq!(merged.counter("hits"), 1);
    assert_eq!(merged.gauge("depth"), 4, "gauges take the maximum");
    let latency = merged.histogram("latency").expect("histogram merged");
    assert_eq!(latency.total, 2);
    assert_eq!(latency.sum, 107);
    assert_eq!(latency.min, 7);
    assert_eq!(latency.max, 100);
    // Merging through the wire codec gives the same result.
    let rewired = {
        let mut base = MetricsSnapshot::decode(&a.encode()).expect("a decodes");
        base.merge(&MetricsSnapshot::decode(&b.encode()).expect("b decodes"));
        base
    };
    assert_eq!(rewired, merged);
}
