//! Declarative chaos plans end to end: a typed [`ChaosPlan`] compiled
//! onto a fleet pool must inject exactly the faults the legacy
//! `CRP_FLEET_*_AFTER` environment knobs inject — and, because the
//! dispatcher re-dispatches the jobs of sabotaged workers and every
//! shard's statistics are a deterministic function of its spec, a chaos
//! run that completes stays bit-identical to the serial backend.

use crp_fleet::{ChaosPlan, FaultKind, WorkerEndpoint};
use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;
use crp_sim::{BackendChoice, FleetBackend, RunnerConfig, SerialBackend, Simulation, TrialStats};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_crp_experiments");

fn worker_args() -> Vec<String> {
    vec!["worker".to_string(), "--stdio".to_string()]
}

fn pool(workers: usize) -> Vec<WorkerEndpoint> {
    (0..workers)
        .map(|_| WorkerEndpoint::local(WORKER_BIN, worker_args()))
        .collect()
}

/// A multi-shard simulation so re-dispatched jobs genuinely interleave
/// with healthy completions in the merge.
fn simulation() -> Simulation {
    let library = ScenarioLibrary::new(512).unwrap();
    let scenario = library.bimodal();
    Simulation::builder()
        .protocol(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(512)
                .prediction(scenario.advice_condensed()),
        )
        .truth(scenario.distribution().clone())
        .max_rounds(64 * 512)
        .trials(1200)
        .seed(0xC4A05)
        .build()
        .unwrap()
}

fn serial_reference() -> TrialStats {
    simulation().run_on(&SerialBackend).unwrap()
}

#[test]
fn a_chaos_plan_run_is_bit_identical_to_the_serial_backend() {
    // One worker dies after its first job, another wedges after two;
    // the third stays healthy and absorbs the re-dispatched jobs.
    let plan = ChaosPlan::parse("0:die@1,1:wedge@2").unwrap();
    let sabotaged = plan.apply(&pool(3)).unwrap();
    let fleet = FleetBackend::with_endpoints(sabotaged);
    let stats = simulation().run_on(&fleet).unwrap();
    assert_eq!(stats, serial_reference(), "chaos plan changed the stats");
}

/// Regression: a worker that wedges (process alive, pipe open, never
/// answers) on its very first job must not pin its dispatcher thread in
/// an untimed pipe read — before stdio connections polled, this exact
/// shape hung the batch at join even after every job had settled on the
/// healthy worker.
#[test]
fn a_worker_that_wedges_immediately_cannot_hang_the_batch() {
    let plan = ChaosPlan::parse("1:wedge@0").unwrap();
    let sabotaged = plan.apply(&pool(2)).unwrap();
    let fleet = FleetBackend::with_endpoints(sabotaged);
    let stats = simulation().run_on(&fleet).unwrap();
    assert_eq!(stats, serial_reference(), "wedged worker changed the stats");
}

#[test]
fn runner_config_carries_the_chaos_plan_into_the_fleet_pool() {
    let plan = ChaosPlan::new()
        .with(0, FaultKind::Garbage, 0)
        .with(1, FaultKind::Mangle, 3);
    let config = RunnerConfig::with_trials(100)
        .with_threads(2)
        .with_chaos(plan.clone());
    assert_eq!(config.backend, BackendChoice::Fleet);
    assert_eq!(config.chaos.as_ref(), Some(&plan));
    // Worker-binary resolution may fail in stripped environments; the
    // property under test is the plan landing in the endpoints' spawn
    // environment, so only assert when the pool can be built.
    if let Ok(backend) = FleetBackend::from_config(&config) {
        let knobs: Vec<Vec<(String, String)>> = backend
            .endpoints()
            .iter()
            .map(|endpoint| match endpoint {
                WorkerEndpoint::Local { envs, .. } => envs.clone(),
                other => panic!("expected local endpoints, got {other:?}"),
            })
            .collect();
        assert_eq!(
            knobs,
            vec![
                vec![("CRP_FLEET_GARBAGE_AFTER".to_string(), "0".to_string())],
                vec![("CRP_FLEET_MANGLE_AFTER".to_string(), "3".to_string())],
            ]
        );
    }
}

#[test]
fn a_plan_targeting_a_missing_worker_is_a_typed_backend_error() {
    let config = RunnerConfig::with_trials(100)
        .with_threads(2)
        .with_chaos(ChaosPlan::new().with(7, FaultKind::Die, 0));
    match FleetBackend::from_config(&config) {
        // In stripped environments worker-binary resolution can fail
        // before the plan is applied; both failures are typed errors.
        Err(err) => assert!(
            err.to_string().contains("out of range") || err.to_string().contains("worker binary"),
            "{err}"
        ),
        Ok(_) => panic!("a 2-worker pool must reject a plan targeting worker 7"),
    }
}
