//! Property-style round-trip tests for the wire codec the out-of-process
//! backends live on: `ShardSpec::to_wire`/`from_wire` and
//! `TrialAccumulator::to_wire`/`from_wire` over seeded random inputs,
//! plus the float bit-pattern edge cases (±0.0, subnormals, infinities —
//! the codec ships IEEE-754 bit patterns, so any NaN-free value must
//! survive bit-for-bit) and truncated / corrupted message rejection.

use crp_info::{CondensedDistribution, SizeDistribution};
use crp_protocols::ProtocolSpec;
use crp_sim::{ShardPlan, ShardSpec, TrialAccumulator};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random distribution whose masses carry "ugly" bit patterns: raw
/// weights normalised by their sum (so the masses rarely sum to exactly
/// 1.0), optionally with exact zeros and one subnormal-scale mass mixed
/// in.
fn random_distribution(rng: &mut ChaCha8Rng) -> SizeDistribution {
    let len = 2 + rng.gen_range(0usize..30);
    let mut weights: Vec<f64> = (0..len).map(|_| rng.gen::<f64>().max(1e-12)).collect();
    if rng.gen_bool(0.3) {
        weights[rng.gen_range(0..len)] = 0.0;
    }
    SizeDistribution::from_weights(weights).unwrap()
}

#[test]
fn shard_specs_round_trip_bit_exactly_over_random_distributions() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0DEC);
    for case in 0..60 {
        let truth = random_distribution(&mut rng);
        let prediction = CondensedDistribution::from_sizes(&random_distribution(&mut rng));
        let max_rounds = 1 + rng.gen_range(0usize..100_000);
        let spec = ShardSpec::sampled(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(truth.max_size().max(2))
                .prediction(prediction.clone())
                .advice_bits(rng.gen_range(0usize..8)),
            truth.clone(),
            max_rounds,
        );
        let plan = ShardPlan::with_shard_size(
            1 + rng.gen_range(0usize..5000),
            1 + rng.gen_range(0usize..512),
        );
        let seed: u64 = rng.gen();
        let shard = rng.gen_range(0usize..plan.num_shards().max(1));
        let wire = spec.to_wire(plan, seed, shard);

        let (parsed, parsed_plan, parsed_seed, parsed_shard) =
            ShardSpec::from_wire(&wire).unwrap_or_else(|e| panic!("case {case}: {e}"));
        assert_eq!(parsed_plan, plan, "case {case}");
        assert_eq!(parsed_seed, seed, "case {case}");
        assert_eq!(parsed_shard, shard, "case {case}");
        // Every mass must survive bit-for-bit: compare raw bit patterns,
        // not just values, so a -0.0 flipped to +0.0 would be caught.
        let original_bits: Vec<u64> = truth.masses().iter().map(|m| m.to_bits()).collect();
        let parsed_bits: Vec<u64> = parsed
            .sampled_masses()
            .expect("population kind survives")
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(original_bits, parsed_bits, "case {case}: truth masses");
        let prediction_bits: Vec<u64> = prediction
            .probabilities()
            .iter()
            .map(|m| m.to_bits())
            .collect();
        let parsed_prediction_bits: Vec<u64> = parsed
            .protocol()
            .params()
            .prediction
            .as_ref()
            .expect("prediction survives")
            .probabilities()
            .iter()
            .map(|m| m.to_bits())
            .collect();
        assert_eq!(
            prediction_bits, parsed_prediction_bits,
            "case {case}: prediction masses"
        );
        // And the re-serialisation is byte-identical, so a spec can relay
        // through any number of dispatch hops unchanged.
        assert_eq!(
            parsed.to_wire(parsed_plan, parsed_seed, parsed_shard),
            wire,
            "case {case}"
        );
    }
}

#[test]
fn shard_spec_masses_survive_signed_zero_and_subnormals() {
    // -0.0 is a valid (non-negative by IEEE comparison) mass with a bit
    // pattern distinct from +0.0; 5e-324 is the smallest positive
    // subnormal.  Both must cross the wire bit-for-bit.
    let masses = vec![0.5, 0.5, -0.0, 5e-324, 0.0];
    let truth = SizeDistribution::from_masses_exact(masses.clone()).unwrap();
    let spec = ShardSpec::sampled(
        ProtocolSpec::new("decay").universe(truth.max_size()),
        truth,
        1000,
    );
    let wire = spec.to_wire(ShardPlan::new(100), 7, 0);
    let (parsed, ..) = ShardSpec::from_wire(&wire).unwrap();
    let parsed_bits: Vec<u64> = parsed
        .sampled_masses()
        .unwrap()
        .iter()
        .map(|m| m.to_bits())
        .collect();
    let original_bits: Vec<u64> = masses.iter().map(|m| m.to_bits()).collect();
    assert_eq!(parsed_bits, original_bits);
    assert_ne!(
        (-0.0f64).to_bits(),
        0.0f64.to_bits(),
        "the test is vacuous unless the zeros differ in bits"
    );
}

#[test]
fn shard_spec_rejects_truncation_at_every_line_and_corrupt_floats() {
    let truth = SizeDistribution::bimodal(512, 16, 256, 0.9).unwrap();
    let spec = ShardSpec::sampled(
        ProtocolSpec::new("sorted-guess-cycling")
            .universe(512)
            .prediction(CondensedDistribution::from_sizes(&truth)),
        truth,
        4096,
    );
    let wire = spec.to_wire(ShardPlan::new(700), 3, 1);
    let lines: Vec<&str> = wire.lines().collect();
    // Dropping the trailing end marker — or any suffix — must be
    // rejected, never silently parsed as a shorter message.
    for keep in 0..lines.len() {
        let truncated = lines[..keep].join("\n");
        assert!(
            ShardSpec::from_wire(&truncated).is_err(),
            "truncation to {keep} lines must not parse"
        );
    }
    // A corrupted float hex token is a typed error, not a bogus value.
    let corrupt = wire.replacen(
        wire.split_ascii_whitespace()
            .find(|t| t.len() == 16 && t.chars().all(|c| c.is_ascii_hexdigit()))
            .expect("the wire carries hex-encoded masses"),
        "zzzzzzzzzzzzzzzz",
        1,
    );
    assert!(ShardSpec::from_wire(&corrupt).is_err());
    // As is garbage that was never a spec.
    assert!(ShardSpec::from_wire("!!fleet-garbage!!\n").is_err());
}

#[test]
fn accumulators_round_trip_bit_exactly_over_random_outcome_streams() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xACC);
    for case in 0..100 {
        let mut accumulator = TrialAccumulator::new();
        for _ in 0..rng.gen_range(0usize..500) {
            // Huge round counts push the sketch into its log-bucketed
            // range and the Welford moments into large magnitudes.
            let rounds = 1 + rng.gen::<u64>() % (1 << rng.gen_range(1u32..50));
            accumulator.record(rng.gen_bool(0.7), rounds);
        }
        let round_tripped = TrialAccumulator::from_wire(&accumulator.to_wire())
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // PartialEq covers every f64 bit of the moments and the whole
        // sketch bucket vector.
        assert_eq!(accumulator, round_tripped, "case {case}");
        assert_eq!(
            accumulator.finalize(),
            round_tripped.finalize(),
            "case {case}"
        );
    }
}

#[test]
fn accumulator_codec_preserves_nan_free_float_edge_bit_patterns() {
    // The accumulator's two float fields (Welford mean and M2) travel as
    // bit patterns.  Craft wire messages whose bits encode the NaN-free
    // edge cases and require parse → re-serialise to reproduce the exact
    // message, proving no value is normalised, rounded or re-derived.
    let edge_bits: [(f64, &str); 5] = [
        (0.0, "+0.0"),
        (-0.0, "-0.0"),
        (5e-324, "min subnormal"),
        (f64::INFINITY, "+inf"),
        (f64::NEG_INFINITY, "-inf"),
    ];
    for (value, label) in edge_bits {
        let bits = value.to_bits();
        let wire = format!(
            "crp-shard-accumulator v1\n\
             trials 2\n\
             resolved 2 {bits:016x} {bits:016x} 1 9\n\
             resolved-counts 2 0 1 0 0 0 0 0 0 0 1\n\
             overall 2 {bits:016x} {bits:016x} 1 9\n\
             overall-counts 2 0 1 0 0 0 0 0 0 0 1\n\
             end\n"
        );
        let parsed = TrialAccumulator::from_wire(&wire).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(parsed.to_wire(), wire, "{label} must survive bit-for-bit");
    }
}

#[test]
fn accumulator_rejects_truncation_and_corrupt_buckets() {
    let mut accumulator = TrialAccumulator::new();
    for i in 0..50u64 {
        accumulator.record(i % 3 != 0, 1 + i * 17);
    }
    let wire = accumulator.to_wire();
    let lines: Vec<&str> = wire.lines().collect();
    for keep in 0..lines.len() {
        let truncated = lines[..keep].join("\n");
        assert!(
            TrialAccumulator::from_wire(&truncated).is_err(),
            "truncation to {keep} lines must not parse"
        );
    }
    // Bucket counts that no longer sum to their declared total are
    // rejected — the self-check that catches a mid-stream bit flip.
    let corrupt = wire.replacen("overall-counts 50", "overall-counts 51", 1);
    assert!(TrialAccumulator::from_wire(&corrupt).is_err());
}

#[test]
fn compact_specs_resolve_refs_to_the_exact_inline_parse() {
    // The compact (scenario-by-hash) encoding must parse to the same
    // spec as the inline encoding once its blobs are resolved, and it
    // must be rejected with a typed error when a blob is missing.
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    for _ in 0..8 {
        let truth = random_distribution(&mut rng);
        let prediction = CondensedDistribution::from_sizes(&random_distribution(&mut rng));
        let spec = ShardSpec::sampled(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(truth.max_size())
                .prediction(prediction),
            truth,
            4096,
        );
        let plan = ShardPlan::new(700);
        let inline = spec.to_wire(plan, 42, 1);
        let mut blobs = crp_fleet::BlobSet::new();
        let (compact, refs) = spec
            .to_wire_compact(plan, 42, 1, &mut blobs)
            .expect("a spec with masses has a compact form");
        assert!(compact.len() < inline.len(), "compact must actually shrink");
        assert_eq!(refs.len(), 2, "population + prediction references");
        for hash in &refs {
            assert!(blobs.get(hash).is_some(), "every ref has its blob");
        }

        // Resolving through the blob set reproduces the inline parse —
        // and re-serialising yields the identical canonical bytes.
        let resolve = |hash: &str| blobs.get(hash).map(str::to_string);
        let (parsed, parsed_plan, seed, shard) =
            ShardSpec::from_wire_with(&compact, &resolve).unwrap();
        assert_eq!((parsed_plan, seed, shard), (plan, 42, 1));
        assert_eq!(parsed.to_wire(plan, 42, 1), inline);

        // A worker without the blobs must refuse, not guess.
        let err = ShardSpec::from_wire(&compact).unwrap_err();
        assert!(
            err.to_string().contains("does not hold"),
            "unexpected error: {err}"
        );
    }
}

#[test]
fn specs_without_masses_have_no_compact_form() {
    let spec = ShardSpec::fixed(ProtocolSpec::new("decay").universe(64), 8, 100);
    let mut blobs = crp_fleet::BlobSet::new();
    assert!(spec
        .to_wire_compact(ShardPlan::new(10), 1, 0, &mut blobs)
        .is_none());
    assert!(blobs.is_empty());
}
