//! The acceptance criterion of the batched trial-kernel layer: for every
//! protocol in the standard registry, a simulation executed with
//! [`KernelChoice::Batched`] must produce **bit-identical** `TrialStats`
//! to the scalar trial-at-a-time executor ([`KernelChoice::Scalar`]) —
//! same seed, same per-trial RNG streams, same accumulator fold order,
//! down to the last bit of the Welford moments and sketch quantiles.
//!
//! The kernels earn their speed from monomorphized fast paths (threshold
//! memoization, buffered draws, execute-once-and-replicate), so these
//! tests quantify over every registry protocol — uniform no-CD, uniform
//! CD and deterministic per-node alike — and over the fixed, sampled and
//! placed population shapes.

use crp_predict::ScenarioLibrary;
use crp_protocols::{ProtocolRegistry, ProtocolSpec};
use crp_sim::{KernelChoice, Simulation, SimulationBuilder};

/// A registry spec with every optional parameter supplied, so each
/// constructor finds what it needs (predictions for the §4 protocols,
/// advice bits for §3, an estimate for the baselines).
fn full_spec(name: &str, universe: usize) -> ProtocolSpec {
    let library = ScenarioLibrary::new(universe).unwrap();
    ProtocolSpec::new(name)
        .universe(universe)
        .prediction(library.bimodal().advice_condensed())
        .participants((universe / 16).max(2))
        .advice_bits(2)
}

/// Builds the same simulation twice — scalar and batched — and asserts
/// the stats agree bit for bit.
fn assert_kernel_equivalence(name: &str, build: impl Fn() -> SimulationBuilder) {
    let scalar = build().kernel(KernelChoice::Scalar).build().unwrap();
    let batched = build().kernel(KernelChoice::Batched).build().unwrap();
    assert_eq!(
        scalar.kernel_name(),
        None,
        "{name}: scalar selects no kernel"
    );
    // PartialEq on TrialStats compares every field bit for bit.
    assert_eq!(
        scalar.run().unwrap(),
        batched.run().unwrap(),
        "kernel diverged from the scalar executor for {name}"
    );
}

#[test]
fn every_registry_protocol_is_bit_identical_under_the_batched_kernel() {
    let universe = 256;
    let library = ScenarioLibrary::new(universe).unwrap();
    let scenario = library.bimodal();
    for name in ProtocolRegistry::standard().names() {
        // 700 trials = 3 shards, sampled population: the kernel must
        // reproduce the scalar path's population draws and shard merge.
        assert_kernel_equivalence(name, || {
            Simulation::builder()
                .protocol(full_spec(name, universe))
                .truth(scenario.distribution().clone())
                .max_rounds(64 * universe)
                .trials(700)
                .seed(0xFEED)
        });
        // Fixed population, different seed and shard count.
        assert_kernel_equivalence(name, || {
            Simulation::builder()
                .protocol(full_spec(name, universe))
                .participants(12)
                .max_rounds(64 * universe)
                .trials(300)
                .seed(9)
        });
    }
}

#[test]
fn every_registry_protocol_selects_a_batched_fast_path() {
    // The registry's protocols are exactly the families the kernels are
    // monomorphized for; a protocol silently falling back to the scalar
    // executor under `auto` would be a performance regression.
    let universe = 256;
    for name in ProtocolRegistry::standard().names() {
        let simulation = Simulation::builder()
            .protocol(full_spec(name, universe))
            .participants(12)
            .max_rounds(64 * universe)
            .kernel(KernelChoice::Batched)
            .trials(10)
            .seed(1)
            .build()
            .unwrap();
        let kernel = simulation.kernel_name();
        assert!(kernel.is_some(), "{name} fell back to the scalar executor");
    }
}

#[test]
fn placed_populations_are_bit_identical_under_the_deterministic_kernel() {
    // Explicit placements drive the §3 deterministic protocols; the
    // kernel memoizes one execution and replicates it across trials.
    for name in ["det-advice-no-cd", "det-advice-cd"] {
        assert_kernel_equivalence(name, || {
            Simulation::builder()
                .protocol(ProtocolSpec::new(name).universe(256).advice_bits(2))
                .participant_ids(vec![100, 130, 200])
                .trials(40)
                .seed(7)
        });
    }
}

#[test]
fn a_custom_protocol_object_falls_back_to_the_scalar_executor() {
    use crp_channel::{Feedback, NodeProtocol, ParticipantId};
    use crp_protocols::{NodeFactory, Protocol, ProtocolError, ProtocolKind};
    use rand::{Rng, RngCore};

    // A randomized per-node protocol must not select a kernel: its nodes
    // read the RNG, so execute-once-and-replicate would be wrong.
    struct CoinFlip;
    struct CoinNode;
    impl NodeProtocol for CoinNode {
        fn decide(&mut self, _round: usize, rng: &mut dyn RngCore) -> bool {
            rng.gen::<f64>() < 0.5
        }
        fn observe(&mut self, _round: usize, _feedback: Feedback) {}
    }
    impl NodeFactory for CoinFlip {
        fn build_nodes(
            &self,
            participants: &[ParticipantId],
        ) -> Result<Vec<Box<dyn NodeProtocol>>, ProtocolError> {
            Ok(participants
                .iter()
                .map(|_| Box::new(CoinNode) as Box<dyn NodeProtocol>)
                .collect())
        }
    }
    impl Protocol for CoinFlip {
        fn name(&self) -> &str {
            "coin-flip"
        }
        fn kind(&self) -> ProtocolKind {
            ProtocolKind::NoCollisionDetection
        }
        fn behavior(&self) -> crp_protocols::Behavior<'_> {
            crp_protocols::Behavior::PerNode(self)
        }
    }

    let simulation = Simulation::builder()
        .protocol_object(Box::new(CoinFlip))
        .participants(4)
        .max_rounds(1000)
        .kernel(KernelChoice::Batched)
        .trials(50)
        .seed(3)
        .build()
        .unwrap();
    assert_eq!(simulation.kernel_name(), None);
    // And it still runs — the scalar executor is the universal fallback.
    assert_eq!(simulation.run().unwrap().trials, 50);
}
