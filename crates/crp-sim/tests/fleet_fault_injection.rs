//! Fault injection against the fleet dispatcher: workers that die
//! mid-stream and workers that answer garbage must not change a single
//! bit of the statistics — the dispatcher re-dispatches their jobs on
//! the surviving workers and drops whatever duplicated or mangled
//! answers still arrive.
//!
//! The sabotaged workers are the *real* `crp_experiments worker` binary
//! with the crp-fleet fault-injection knobs set in their (per-endpoint)
//! environment: `CRP_FLEET_DIE_AFTER=N` makes the worker process write a
//! truncated frame and hard-exit when job N arrives;
//! `CRP_FLEET_GARBAGE_AFTER=N` makes it answer every job from the N-th
//! onwards with bytes that are not a frame at all.

use crp_fleet::WorkerEndpoint;
use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;
use crp_sim::{FleetBackend, SerialBackend, Simulation, SweepMatrix, SweepProtocol, TrialStats};

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_crp_experiments");

fn worker_args() -> Vec<String> {
    vec!["worker".to_string(), "--stdio".to_string()]
}

fn healthy() -> WorkerEndpoint {
    WorkerEndpoint::local(WORKER_BIN, worker_args())
}

fn sabotaged(var: &str, value: usize) -> WorkerEndpoint {
    WorkerEndpoint::local_with_env(
        WORKER_BIN,
        worker_args(),
        vec![(var.to_string(), value.to_string())],
    )
}

/// A multi-shard, sampled-population simulation (5 shards), so retries
/// genuinely interleave with healthy completions in the merge.
fn simulation() -> Simulation {
    let library = ScenarioLibrary::new(512).unwrap();
    let scenario = library.bimodal();
    Simulation::builder()
        .protocol(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(512)
                .prediction(scenario.advice_condensed()),
        )
        .truth(scenario.distribution().clone())
        .max_rounds(64 * 512)
        .trials(1200)
        .seed(0xDECAF)
        .build()
        .unwrap()
}

fn serial_reference() -> TrialStats {
    simulation().run_on(&SerialBackend).unwrap()
}

#[test]
fn a_worker_dying_mid_stream_is_retried_bit_identically() {
    // The dying worker serves one job per process life, then writes a
    // truncated frame and exits; the dispatcher respawns it (up to its
    // reconnect budget) and re-dispatches the lost jobs.
    let fleet = FleetBackend::with_endpoints(vec![sabotaged("CRP_FLEET_DIE_AFTER", 1), healthy()]);
    let stats = simulation().run_on(&fleet).unwrap();
    assert_eq!(stats, serial_reference(), "worker death changed the stats");
}

#[test]
fn a_worker_answering_garbage_is_retried_bit_identically() {
    // The garbage worker answers every job with unframable bytes; every
    // one of its jobs must be recomputed by the healthy worker.
    let fleet =
        FleetBackend::with_endpoints(vec![sabotaged("CRP_FLEET_GARBAGE_AFTER", 0), healthy()]);
    let stats = simulation().run_on(&fleet).unwrap();
    assert_eq!(
        stats,
        serial_reference(),
        "garbage answers changed the stats"
    );
}

#[test]
fn a_worker_answering_well_framed_nonsense_is_retried_bit_identically() {
    // The mangling worker frames its answers correctly, but their bodies
    // are not accumulators; the dispatcher-side validator must reject
    // them before the job settles and recompute on the healthy worker.
    let fleet =
        FleetBackend::with_endpoints(vec![sabotaged("CRP_FLEET_MANGLE_AFTER", 0), healthy()]);
    let stats = simulation().run_on(&fleet).unwrap();
    assert_eq!(
        stats,
        serial_reference(),
        "mangled answers changed the stats"
    );
}

#[test]
fn a_sweep_survives_both_faults_at_once() {
    let library = ScenarioLibrary::new(256).unwrap();
    let matrix = SweepMatrix::new()
        .scenarios([library.bimodal(), library.adversarial_drift()])
        .protocol(
            SweepProtocol::from_scenario("decay", |s| {
                ProtocolSpec::new("decay").universe(s.distribution().max_size())
            })
            .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
        )
        .trials(600)
        .seed(31);
    let reference = matrix.run_on(&SerialBackend).unwrap();
    let fleet = FleetBackend::with_endpoints(vec![
        sabotaged("CRP_FLEET_DIE_AFTER", 2),
        sabotaged("CRP_FLEET_GARBAGE_AFTER", 1),
        healthy(),
    ]);
    let results = matrix.run_on(&fleet).unwrap();
    assert_eq!(reference, results, "faulty pool diverged from serial");
}

#[test]
fn a_pool_with_no_surviving_workers_errors_instead_of_hanging() {
    // Garbage-only pool: every attempt fails, the dispatcher runs out of
    // retries and reports a typed backend error.
    let fleet = FleetBackend::with_endpoints(vec![sabotaged("CRP_FLEET_GARBAGE_AFTER", 0)]);
    let err = simulation().run_on(&fleet).unwrap_err();
    assert!(
        matches!(err, crp_sim::SimError::Backend { .. }),
        "got {err:?}"
    );
}
