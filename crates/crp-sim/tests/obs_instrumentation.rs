//! Backend-level metrics determinism: the instrumentation counters the
//! runner feeds into [`crp_obs::global`] must advance by the *same*
//! deltas no matter which in-process backend executes the shards, and a
//! fleet run must account its work on the fleet counters (the shards
//! execute inside worker processes, so the local shard counter stays
//! flat while `fleet.dispatch` advances).
//!
//! The global registry is process-wide, so every assertion lives in one
//! `#[test]` in its own integration-test binary — parallel tests in a
//! shared process would contaminate each other's counter deltas.

use crp_protocols::ProtocolSpec;
use crp_sim::{FleetBackend, SerialBackend, Simulation, ThreadBackend};

/// The worker binary cargo built alongside this test.
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_crp_experiments");

fn counter(name: &str) -> u64 {
    crp_obs::global().snapshot().counter(name)
}

fn shard_micros_samples() -> u64 {
    crp_obs::global()
        .snapshot()
        .histogram("sim.shard_micros")
        .map_or(0, |h| h.total)
}

#[test]
fn counter_deltas_are_identical_across_backends_and_fleet_accounted() {
    let simulation = Simulation::builder()
        .protocol(ProtocolSpec::new("decay").universe(256))
        .participants(40)
        .max_rounds(16 * 256)
        .trials(700)
        .seed(0xAB5E)
        .build()
        .unwrap();

    // Serial reference: one sim.shard.execute tick and one
    // sim.shard_micros sample per shard.
    let before_exec = counter("sim.shard.execute");
    let before_samples = shard_micros_samples();
    let reference = simulation.run_on(&SerialBackend).unwrap();
    let shards = counter("sim.shard.execute") - before_exec;
    assert!(shards >= 2, "700 trials should split into multiple shards");
    assert_eq!(
        shard_micros_samples() - before_samples,
        shards,
        "one latency sample per shard"
    );

    // Thread backends: identical stats AND identical counter deltas,
    // independent of the worker count.
    for workers in [2usize, 8] {
        let before_exec = counter("sim.shard.execute");
        let before_samples = shard_micros_samples();
        let stats = simulation.run_on(&ThreadBackend::new(workers)).unwrap();
        assert_eq!(reference, stats, "thread-{workers} stats diverged");
        assert_eq!(
            counter("sim.shard.execute") - before_exec,
            shards,
            "thread-{workers} shard count diverged"
        );
        assert_eq!(
            shard_micros_samples() - before_samples,
            shards,
            "thread-{workers} sample count diverged"
        );
    }

    // Fleet backend: the shards run inside worker subprocesses, so the
    // local shard counter must stay flat while the dispatcher accounts
    // every job (one per shard, plus any requeues) on fleet.dispatch.
    let before_exec = counter("sim.shard.execute");
    let before_dispatch = counter("fleet.dispatch");
    let stats = simulation
        .run_on(&FleetBackend::local_with_command(2, WORKER_BIN))
        .unwrap();
    assert_eq!(reference, stats, "fleet stats diverged");
    assert_eq!(
        counter("sim.shard.execute") - before_exec,
        0,
        "fleet shards must not tick the local shard counter"
    );
    assert!(
        counter("fleet.dispatch") - before_dispatch >= shards,
        "the dispatcher must account at least one dispatch per shard"
    );
}
