//! The acceptance criterion of the executor-agnostic backend refactor:
//! `SerialBackend`, `ThreadBackend` (1/2/8 workers), `ProcessBackend`
//! and `FleetBackend` (2 persistent workers — including a pool with an
//! injected worker death) must produce **bit-identical** `TrialStats`
//! for the same configuration — for a single `Simulation` and for a
//! whole `SweepMatrix` executed through the work-stealing scheduler.
//!
//! The process and fleet backends spawn the real `crp_experiments`
//! binary (cargo exposes its path to integration tests via
//! `CARGO_BIN_EXE_crp_experiments`), so these tests exercise the full
//! wire round trip: spec out, accumulator back — one-shot over stdin for
//! the process backend, framed over long-lived worker stdio for the
//! fleet.

use crp_fleet::{DispatchMode, WorkerEndpoint};
use crp_predict::ScenarioLibrary;
use crp_protocols::ProtocolSpec;
use crp_sim::{
    FleetBackend, KernelChoice, ProcessBackend, SerialBackend, ShardBackend, Simulation,
    SweepMatrix, SweepProtocol, ThreadBackend,
};

/// The worker binary cargo built alongside this test.
const WORKER_BIN: &str = env!("CARGO_BIN_EXE_crp_experiments");

fn process_backend(workers: usize) -> ProcessBackend {
    ProcessBackend::new(workers).with_command(WORKER_BIN)
}

/// A fleet pool of two persistent local workers, one of which is
/// sabotaged to die after its first job — the dispatcher must respawn /
/// re-dispatch without changing a single bit of the statistics.
fn fleet_with_dying_worker() -> FleetBackend {
    let args = vec!["worker".to_string(), "--stdio".to_string()];
    FleetBackend::with_endpoints(vec![
        WorkerEndpoint::local_with_env(
            WORKER_BIN,
            args.clone(),
            vec![("CRP_FLEET_DIE_AFTER".to_string(), "1".to_string())],
        ),
        WorkerEndpoint::local(WORKER_BIN, args),
    ])
}

/// One worker whose hello advertises capacity 4: the dispatcher keeps up
/// to four jobs pipelined on the single connection (answers tagged by
/// id, possibly out of order) — and the statistics must not move a bit.
fn fleet_with_capacity_4_worker() -> FleetBackend {
    FleetBackend::with_endpoints(vec![WorkerEndpoint::local(
        WORKER_BIN,
        vec![
            "worker".to_string(),
            "--stdio".to_string(),
            "--capacity".to_string(),
            "4".to_string(),
        ],
    )])
}

/// A mixed-version pool: one worker forced to speak protocol v1 (no
/// scenario messages, fully inline payloads) next to a current v2
/// worker.  Version negotiation must keep both productive and the
/// statistics identical.
fn fleet_with_v1_worker() -> FleetBackend {
    let args = vec!["worker".to_string(), "--stdio".to_string()];
    FleetBackend::with_endpoints(vec![
        WorkerEndpoint::local_with_env(
            WORKER_BIN,
            args.clone(),
            vec![("CRP_FLEET_SPEAK_V1".to_string(), "1".to_string())],
        ),
        WorkerEndpoint::local(WORKER_BIN, args),
    ])
}

/// A pool whose second worker joins *elastically*: the backend starts
/// with one fixed local worker plus a registration listener, and a
/// `worker --join` subprocess dials in while (or just before) the batch
/// runs.  The join, and the joiner's eventual departure, must not move
/// a bit of the statistics.
// The joiner exits on its own once the dispatcher hangs up; the test
// process is short-lived, so it is never reaped explicitly.
#[allow(clippy::zombie_processes)]
fn fleet_with_elastic_joiner() -> FleetBackend {
    let backend = FleetBackend::local_with_command(1, WORKER_BIN);
    let addr = backend
        .listen_for_workers("127.0.0.1:0")
        .expect("bind registration listener");
    std::process::Command::new(WORKER_BIN)
        .args(["worker", "--join", &addr.to_string()])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn joining worker");
    backend
}

/// Every backend the equivalence criterion quantifies over.
fn all_backends() -> Vec<(&'static str, Box<dyn ShardBackend>)> {
    vec![
        ("serial", Box::new(SerialBackend)),
        ("thread-1", Box::new(ThreadBackend::new(1))),
        ("thread-2", Box::new(ThreadBackend::new(2))),
        ("thread-8", Box::new(ThreadBackend::new(8))),
        ("process-2", Box::new(process_backend(2))),
        (
            "fleet-2",
            Box::new(FleetBackend::local_with_command(2, WORKER_BIN)),
        ),
        (
            "fleet-2-threaded",
            Box::new(
                FleetBackend::local_with_command(2, WORKER_BIN)
                    .with_dispatch_mode(DispatchMode::Threaded),
            ),
        ),
        (
            "fleet-weighted",
            Box::new(FleetBackend::with_weighted_endpoints(vec![
                (
                    WorkerEndpoint::local(
                        WORKER_BIN,
                        vec!["worker".to_string(), "--stdio".to_string()],
                    ),
                    3,
                ),
                (
                    WorkerEndpoint::local(
                        WORKER_BIN,
                        vec!["worker".to_string(), "--stdio".to_string()],
                    ),
                    1,
                ),
            ])),
        ),
        ("fleet-elastic-join", Box::new(fleet_with_elastic_joiner())),
        ("fleet-dying-worker", Box::new(fleet_with_dying_worker())),
        ("fleet-capacity-4", Box::new(fleet_with_capacity_4_worker())),
        ("fleet-v1-worker", Box::new(fleet_with_v1_worker())),
    ]
}

#[test]
fn simulation_stats_are_bit_identical_across_all_backends() {
    // 700 trials = 3 shards, so the merge path is genuinely exercised;
    // a sampled population exercises the distribution wire codec.  The
    // equivalence quantifies over backends *and* trial kernels: the
    // batched struct-of-arrays kernel must agree with the scalar
    // executor on every backend.
    let library = ScenarioLibrary::new(512).unwrap();
    let scenario = library.bimodal();
    let build = |kernel: KernelChoice| {
        Simulation::builder()
            .protocol(
                ProtocolSpec::new("sorted-guess-cycling")
                    .universe(512)
                    .prediction(scenario.advice_condensed()),
            )
            .truth(scenario.distribution().clone())
            .max_rounds(64 * 512)
            .trials(700)
            .seed(0xFEED)
            .kernel(kernel)
            .build()
            .unwrap()
    };

    let reference = build(KernelChoice::Scalar).run_on(&SerialBackend).unwrap();
    assert_eq!(reference.trials, 700);
    for kernel in [KernelChoice::Scalar, KernelChoice::Batched] {
        let simulation = build(kernel);
        for (name, backend) in all_backends() {
            let stats = simulation.run_on(backend.as_ref()).unwrap();
            // PartialEq on TrialStats compares every field, including
            // every f64 bit of the Welford moments and sketch quantiles.
            assert_eq!(reference, stats, "backend {name} diverged ({kernel:?})");
        }
    }
}

#[test]
fn sweep_stats_are_bit_identical_across_all_backends_and_seeds() {
    // Property-style: several seeds over a multi-cell grid (2 scenarios x
    // 2 protocols), each cell spanning multiple shards, executed through
    // the work-stealing (cell, shard) queue on every backend.
    let library = ScenarioLibrary::new(256).unwrap();
    for seed in [1u64, 99, 0xC0FFEE] {
        let build = |kernel: KernelChoice| {
            SweepMatrix::new()
                .scenarios([library.bimodal(), library.adversarial_drift()])
                .protocol(
                    SweepProtocol::from_scenario("decay", |s| {
                        ProtocolSpec::new("decay").universe(s.distribution().max_size())
                    })
                    .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
                )
                .protocol(
                    SweepProtocol::from_scenario("sorted-guess", |s| {
                        ProtocolSpec::new("sorted-guess-cycling")
                            .universe(s.distribution().max_size())
                            .prediction(s.advice_condensed())
                    })
                    .max_rounds_with(|s| Some(64 * s.distribution().max_size())),
                )
                .trials(300)
                .seed(seed)
                .kernel(kernel)
        };

        let reference = build(KernelChoice::Scalar).run_on(&SerialBackend).unwrap();
        assert_eq!(reference.cells().len(), 4);
        for kernel in [KernelChoice::Scalar, KernelChoice::Batched] {
            let matrix = build(kernel);
            for (name, backend) in all_backends() {
                let results = matrix.run_on(backend.as_ref()).unwrap();
                assert_eq!(
                    reference, results,
                    "backend {name} diverged at seed {seed} ({kernel:?})"
                );
            }
        }
    }
}

#[test]
fn tracing_does_not_move_a_bit_of_the_statistics() {
    // The observability acceptance bar: enabling the JSONL trace sink
    // must not move a single bit of the statistics on any backend.
    // The reference runs *before* the sink is installed (tracing off);
    // this test is the only one in the workspace that installs the
    // process-wide sink, so every other test in this binary keeps
    // exercising the disabled path concurrently.
    let library = ScenarioLibrary::new(256).unwrap();
    let scenario = library.bimodal();
    let simulation = Simulation::builder()
        .protocol(
            ProtocolSpec::new("sorted-guess-cycling")
                .universe(256)
                .prediction(scenario.advice_condensed()),
        )
        .truth(scenario.distribution().clone())
        .max_rounds(64 * 256)
        .trials(700)
        .seed(0xBEE5)
        .build()
        .unwrap();
    let reference = simulation.run_on(&SerialBackend).unwrap();

    let path = std::env::temp_dir().join(format!(
        "crp-backend-equivalence-trace-{}.jsonl",
        std::process::id()
    ));
    crp_obs::init_trace(path.to_str().unwrap()).unwrap();
    assert!(crp_obs::trace_enabled());
    for (name, backend) in all_backends() {
        let stats = simulation.run_on(backend.as_ref()).unwrap();
        assert_eq!(
            reference, stats,
            "backend {name} diverged with tracing enabled"
        );
    }

    // Every line the run wrote must satisfy the schema, and the file
    // must contain the runner and dispatcher event families.
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let mut seen = std::collections::BTreeSet::new();
    let mut stamped_dispatches = 0usize;
    for line in text.lines() {
        let kind = crp_obs::check_trace_line(line).expect("schema-valid trace line");
        if kind == "fleet.dispatch" {
            // With tracing on, dispatched jobs carry content-derived
            // span ids; the bit-identity assertion above therefore
            // quantifies over the span-stamped path, not just the sink.
            let fields = crp_obs::trace_line_fields(line).expect("parseable trace line");
            let span = fields
                .iter()
                .find(|(name, _)| name == "span")
                .map(|(_, value)| value.trim_matches('"').to_string())
                .expect("fleet.dispatch is span-stamped when tracing is on");
            assert!(crp_obs::is_span_id(&span), "malformed span id {span:?}");
            stamped_dispatches += 1;
        }
        seen.insert(kind);
    }
    for required in ["kernel.select", "shard.execute", "fleet.dispatch"] {
        assert!(seen.contains(required), "no {required} event in the trace");
    }
    assert!(
        stamped_dispatches > 0,
        "no span-stamped dispatches recorded"
    );
}

#[test]
fn per_node_placements_survive_the_process_boundary() {
    // The deterministic §3 protocols run under explicit placements; the
    // placement must round-trip through the wire spec.
    let simulation = Simulation::builder()
        .protocol(
            ProtocolSpec::new("det-advice-cd")
                .universe(256)
                .advice_bits(2),
        )
        .participant_ids(vec![100, 130, 200])
        .trials(3)
        .seed(7)
        .build()
        .unwrap();
    let serial = simulation.run_on(&SerialBackend).unwrap();
    let process = simulation.run_on(&process_backend(2)).unwrap();
    assert_eq!(serial, process);
    let fleet = simulation
        .run_on(&FleetBackend::local_with_command(2, WORKER_BIN))
        .unwrap();
    assert_eq!(serial, fleet);
    assert!((serial.success_rate() - 1.0).abs() < 1e-12);
}

#[test]
fn custom_protocol_objects_are_rejected_by_the_process_backend() {
    use crp_protocols::{NoCdSchedule, ScheduleProtocol};
    struct Constant;
    impl NoCdSchedule for Constant {
        fn probability(&self, _round: usize) -> Option<f64> {
            Some(0.5)
        }
        fn name(&self) -> &str {
            "constant"
        }
    }
    let simulation = Simulation::builder()
        .protocol_object(Box::new(ScheduleProtocol(Constant)))
        .participants(4)
        .max_rounds(1000)
        .trials(10)
        .seed(0)
        .build()
        .unwrap();
    // In-process backends run it fine...
    assert_eq!(simulation.run_on(&SerialBackend).unwrap().trials, 10);
    // ...but it has no serialisable description, so the out-of-process
    // backends report a typed error instead of silently falling back.
    let err = simulation.run_on(&process_backend(2)).unwrap_err();
    assert!(matches!(err, crp_sim::SimError::Backend { .. }));
    let err = simulation
        .run_on(&FleetBackend::local_with_command(2, WORKER_BIN))
        .unwrap_err();
    assert!(matches!(err, crp_sim::SimError::Backend { .. }));
}
