//! The sweep daemon: an accept loop owning a warm [`Dispatcher`] fleet
//! and a [`ResultCache`], executing submissions cache-first.
//!
//! For every submission the server settles work at the cheapest level
//! that can answer it:
//!
//! 1. **Cell hits** — a cell whose [`cell hash`](crate::wire::cell_hash)
//!    is cached returns its merged blob without touching a single job.
//! 2. **Job hits** — remaining cells probe per-job; cached answers are
//!    bit-exact worker blobs.
//! 3. **Dispatch** — only the missing jobs go to the warm fleet (with
//!    scenario-by-hash shipping on v2 workers); fresh answers and fresh
//!    cell merges are written back to the cache.
//!
//! A corrupt or truncated cache entry is *never* served: the
//! [`ResultCache`] detects it, the server recomputes, and the overwrite
//! heals the entry.  Because answers are deterministic functions of
//! their payloads, a hit and a recompute are bit-identical — the cache
//! changes wall-clock time, never statistics.
//!
//! The server is payload-agnostic: the host supplies the cell `merge`
//! function and the answer `check` used to vet both worker answers and
//! cache reads (`crp_experiments serve` plugs in the
//! `TrialAccumulator` codec).

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Mutex;

use crp_fleet::frame::{read_frame, write_frame};
use crp_fleet::{BlobSet, Dispatcher, JobPayload, WorkerEndpoint};

use crate::cache::ResultCache;
use crate::wire::{CellOutcome, ServeMessage, Submission, SubmissionOutcome, SERVICE_VERSION};
use crate::ServeError;

/// Merges one cell's job answers (in submission order) into the cell's
/// result blob.  Supplied by the host; `crp-sim` merges accumulators in
/// shard order here.
pub type CellMerger<'a> = &'a (dyn Fn(&[String]) -> Result<String, String> + Sync);

/// Validates an answer blob — applied to worker answers *before* they
/// settle and to cache reads *before* they are served, so a stale or
/// semantically invalid entry is recomputed instead of returned.
pub type AnswerCheck<'a> = &'a (dyn Fn(&str) -> Result<(), String> + Sync);

/// Reconstructs a job's canonical inline payload from its compact
/// payload, resolving blob references through the supplied lookup.  A
/// compact-only job's hash is verified against this reconstruction
/// before anything is dispatched or cached — so large masses travel
/// once per submission (in the blob table) instead of once per shard,
/// without weakening content addressing.
pub type Canonicalizer<'a> =
    &'a (dyn Fn(&str, &dyn Fn(&str) -> Option<String>) -> Result<String, String> + Sync);

/// The three host-supplied hooks a payload-agnostic server needs
/// (`crp_sim::service::sweep_hooks` supplies the accumulator-codec
/// implementations the CLI uses).
#[derive(Clone, Copy)]
pub struct SubmissionHooks<'a> {
    /// Merges one cell's job answers (in submission order) into the
    /// cell's result blob.
    pub merge: CellMerger<'a>,
    /// Validates an answer blob — worker answers before they settle and
    /// cache reads before they are served.
    pub check: AnswerCheck<'a>,
    /// Reconstructs a canonical inline payload from a compact one.
    pub canonicalize: Canonicalizer<'a>,
}

/// A progress sink: `(settled_jobs, total_jobs, cache_hits)`.
pub type ProgressSink<'a> = &'a (dyn Fn(usize, usize, usize) + Sync);

/// The sweep service daemon.
pub struct SweepServer {
    listener: TcpListener,
    dispatcher: Dispatcher,
    cache: Option<ResultCache>,
}

impl SweepServer {
    /// Binds the service listener and readies (but does not yet connect)
    /// the worker fleet.  `addr` may use port 0 for tests; read the
    /// bound address back with [`SweepServer::local_addr`].  Without a
    /// cache every submission recomputes (the warm fleet still helps).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn bind(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        endpoints: Vec<WorkerEndpoint>,
        cache: Option<ResultCache>,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&addr)
            .map_err(|e| ServeError::Io(format!("cannot bind service listener {addr:?}: {e}")))?;
        Ok(Self {
            listener,
            dispatcher: Dispatcher::new(endpoints),
            cache,
        })
    }

    /// The actually bound service address (resolves port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// The warm fleet behind this server.
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// Opens the elastic worker-registration listener on the warm
    /// fleet: workers that dial the returned address
    /// (`crp_experiments worker --join host:port`) are folded into the
    /// event loop of every subsequent — or currently dispatching —
    /// submission.  Returns the bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Fleet`] when the address cannot be bound.
    pub fn listen_for_workers(&self, addr: &str) -> Result<SocketAddr, ServeError> {
        self.dispatcher
            .listen_for_workers(addr)
            .map_err(ServeError::from)
    }

    /// Accepts and serves client connections — one at a time, so
    /// submissions are executed sequentially over the shared warm fleet
    /// — until a client sends `serve-shutdown`.  Per-connection protocol
    /// errors are reported on stderr and do not stop the daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the accept loop itself fails.
    pub fn serve(&self, hooks: SubmissionHooks<'_>) -> Result<(), ServeError> {
        loop {
            let (stream, peer) = self
                .listener
                .accept()
                .map_err(|e| ServeError::Io(format!("service accept failed: {e}")))?;
            match self.serve_connection(stream, hooks) {
                Ok(true) => {
                    self.dispatcher.shutdown_workers();
                    return Ok(());
                }
                Ok(false) => {}
                Err(err) => eprintln!("crp-serve: connection {peer}: {err}"),
            }
        }
    }

    /// Serves one client connection.  Returns `Ok(true)` when the client
    /// asked the daemon to shut down.
    fn serve_connection(
        &self,
        stream: TcpStream,
        hooks: SubmissionHooks<'_>,
    ) -> Result<bool, ServeError> {
        stream.set_nodelay(true).ok();
        let mut reader = std::io::BufReader::new(stream.try_clone()?);
        let writer = Mutex::new(stream);
        let send = |message: &ServeMessage| -> Result<(), ServeError> {
            let mut guard = writer.lock().expect("no server panics");
            write_frame(&mut *guard, &message.encode()).map_err(ServeError::from)
        };
        send(&ServeMessage::Hello {
            version: SERVICE_VERSION,
        })?;
        let mut tenant = "anonymous".to_string();
        loop {
            let Some(frame) = read_frame(&mut reader)? else {
                return Ok(false);
            };
            match ServeMessage::decode(&frame)? {
                ServeMessage::ClientHello { tenant: raw } => {
                    tenant = crate::obs::sanitize_tenant(&raw);
                }
                ServeMessage::Submit { id, body } => {
                    // Progress write failures are ignored: a vanished
                    // client must not abort the batch mid-dispatch (the
                    // results still land in the cache for next time).
                    let progress = |settled: usize, total: usize, hits: usize| {
                        let _ = send(&ServeMessage::Progress {
                            id,
                            completed: settled,
                            total,
                            hits,
                        });
                    };
                    let outcome = Submission::decode(&body)
                        .and_then(|submission| self.run_submission(&submission, hooks, &progress));
                    match outcome {
                        Ok(outcome) => {
                            crate::obs::record_tenant_submission(
                                crp_obs::global(),
                                &tenant,
                                outcome.jobs_total as u64,
                                outcome.job_hits as u64,
                                outcome.computed as u64,
                            );
                            send(&ServeMessage::Result {
                                id,
                                body: outcome.encode(),
                            })?
                        }
                        Err(err) => send(&ServeMessage::Error {
                            id,
                            message: err.to_string(),
                        })?,
                    }
                }
                ServeMessage::Stats { id } => send(&ServeMessage::StatsReport {
                    id,
                    body: self.stats_report(),
                })?,
                ServeMessage::Shutdown => return Ok(true),
                other => {
                    return Err(ServeError::Malformed(format!(
                        "server received an unexpected {other:?}"
                    )))
                }
            }
        }
    }

    /// Renders the daemon's live observability report: the shared
    /// cache summary, the per-tenant submission summary, every
    /// workspace counter/gauge/histogram, the per-worker fleet health
    /// snapshot, and the fleet-wide metrics pull (the merged rollup
    /// plus every worker's shipped snapshot).  This is the body of the
    /// `stats-report` frame answering a [`ServeMessage::Stats`]
    /// request.
    pub fn stats_report(&self) -> String {
        let snapshot = crp_obs::global().snapshot();
        let mut body = format!("submit: {}\n", crate::obs::cache_summary_from(&snapshot));
        body.push_str(&crate::obs::tenant_summary(&snapshot));
        body.push_str(&snapshot.render());
        let fleet = self.dispatcher.snapshot();
        if !fleet.workers.is_empty() {
            body.push_str(&fleet.render());
        }
        let metrics = self.dispatcher.worker_metrics();
        if !metrics.workers.is_empty() {
            body.push_str(&metrics.render());
        }
        body
    }

    /// A cache probe that only ever returns a *trustworthy* value: a
    /// missing entry, a [`ServeError::CorruptCache`], or a value failing
    /// the host's `check` all read as a miss (the recompute overwrites
    /// and heals the entry).  Genuine I/O failures propagate.
    fn cache_probe(
        &self,
        key: &str,
        kind: &'static str,
        check: AnswerCheck<'_>,
    ) -> Result<Option<String>, ServeError> {
        let Some(cache) = &self.cache else {
            return Ok(None);
        };
        match cache.get(key) {
            Ok(Some(value)) => {
                if check(&value).is_ok() {
                    crate::obs::probe_hit(kind, key, value.len());
                    Ok(Some(value))
                } else {
                    crate::obs::probe_heal(kind, key);
                    Ok(None)
                }
            }
            Ok(None) => {
                crate::obs::probe_miss(kind, key);
                Ok(None)
            }
            Err(ServeError::CorruptCache { .. }) => {
                crate::obs::probe_heal(kind, key);
                Ok(None)
            }
            Err(other) => Err(other),
        }
    }

    fn cache_put(&self, key: &str, value: &str) -> Result<(), ServeError> {
        match &self.cache {
            Some(cache) => {
                crp_obs::global().add(crate::obs::CACHE_WRITE_BYTES, value.len() as u64);
                cache.put(key, value)
            }
            None => Ok(()),
        }
    }

    /// Executes one verified submission: cell cache → job cache → warm
    /// fleet dispatch → merge, writing fresh answers back.  `progress`
    /// fires as `(settled_jobs, total_jobs, cache_hits)` — once after
    /// the cache scan, then per dispatched completion.
    ///
    /// # Errors
    ///
    /// Hash mismatches, cache I/O failures, fleet dispatch failures, and
    /// merge failures.
    pub fn run_submission(
        &self,
        submission: &Submission,
        hooks: SubmissionHooks<'_>,
        progress: ProgressSink<'_>,
    ) -> Result<SubmissionOutcome, ServeError> {
        let started = std::time::Instant::now();
        let check = hooks.check;
        submission.verify_hashes()?;
        let total = submission.job_count();
        // The submission's trace span is derived from content the
        // client already hashed — the hash of the ordered cell-hash
        // list — so identical submissions carry identical spans across
        // processes and reruns, and stamping never consumes randomness.
        let cell_hashes: Vec<String> = submission.cells.iter().map(|c| c.hash.clone()).collect();
        let submission_span = crp_obs::span_from_hash(&crate::wire::cell_hash(&cell_hashes));
        if crp_obs::trace_enabled() {
            let mut event = crp_obs::TraceEvent::new("serve.submission")
                .u64("cells", submission.cells.len() as u64)
                .u64("jobs", total as u64);
            event = crp_obs::SpanContext::new(&submission_span).stamp(event);
            crp_obs::emit(&event);
        }
        let mut blob_set = BlobSet::new();
        for (_, blob) in &submission.blobs {
            blob_set.insert(blob.clone());
        }

        // Phase 1+2: settle whole cells, then individual jobs, from the
        // cache.
        let mut cell_cached: Vec<Option<String>> = Vec::with_capacity(submission.cells.len());
        let mut answers: Vec<Vec<Option<String>>> = Vec::with_capacity(submission.cells.len());
        let mut pending: Vec<(usize, usize)> = Vec::new();
        let mut hits = 0usize;
        for (cell_index, cell) in submission.cells.iter().enumerate() {
            // Emitted before any of the cell's jobs dispatch, so within
            // this file a job span's parent (the cell span) always
            // appears first — the ordering `trace-check` verifies.
            if crp_obs::trace_enabled() {
                let event = crp_obs::TraceEvent::new("serve.cell")
                    .str("hash", &cell.hash)
                    .u64("jobs", cell.jobs.len() as u64);
                crp_obs::emit(
                    &crp_obs::SpanContext::with_parent(
                        crp_obs::span_from_hash(&cell.hash),
                        submission_span.clone(),
                    )
                    .stamp(event),
                );
            }
            if let Some(blob) = self.cache_probe(&cell.hash, "cell", check)? {
                hits += cell.jobs.len();
                cell_cached.push(Some(blob));
                answers.push(Vec::new());
                continue;
            }
            cell_cached.push(None);
            let mut cell_answers = Vec::with_capacity(cell.jobs.len());
            for (job_index, job) in cell.jobs.iter().enumerate() {
                match self.cache_probe(&job.hash, "job", check)? {
                    Some(answer) => {
                        hits += 1;
                        cell_answers.push(Some(answer));
                    }
                    None => {
                        pending.push((cell_index, job_index));
                        cell_answers.push(None);
                    }
                }
            }
            answers.push(cell_answers);
        }
        progress(hits, total, hits);

        // Phase 3: dispatch only the misses to the warm fleet.  Each
        // pending job needs its canonical inline payload — shipped by
        // the client, or reconstructed here from the compact form and
        // the blob table — and the reconstruction is hash-verified, so
        // a compact job whose claimed key does not match its content
        // can never reach a worker or the cache.
        let computed = pending.len();
        if !pending.is_empty() {
            let resolve = |hash: &str| blob_set.get(hash).map(str::to_string);
            let payloads: Vec<JobPayload> = pending
                .iter()
                .map(|&(cell, job)| {
                    let job = &submission.cells[cell].jobs[job];
                    let inline = match (&job.inline, &job.compact) {
                        (Some(inline), _) => inline.clone(),
                        (None, Some(compact)) => {
                            let inline = (hooks.canonicalize)(compact, &resolve).map_err(|e| {
                                ServeError::Malformed(format!(
                                    "cannot canonicalise compact job {}: {e}",
                                    job.hash
                                ))
                            })?;
                            let actual = crp_fleet::content_hash(inline.as_bytes());
                            if actual != job.hash {
                                return Err(ServeError::HashMismatch {
                                    what: "compact job".to_string(),
                                    claimed: job.hash.clone(),
                                    actual,
                                });
                            }
                            inline
                        }
                        // The wire decoder rejects payload-less jobs,
                        // but run_submission also accepts hand-built
                        // submissions — keep it a typed error.
                        (None, None) => {
                            return Err(ServeError::Malformed(format!(
                                "job {} has neither an inline nor a compact payload",
                                job.hash
                            )))
                        }
                    };
                    // Every dispatched job carries its deterministic
                    // span (derived from the hashes the client already
                    // computed), parented on its cell — unconditionally,
                    // because stamping costs two string slices and never
                    // influences execution.
                    let span = crp_fleet::JobSpan {
                        id: crp_obs::span_from_hash(&job.hash),
                        parent: Some(crp_obs::span_from_hash(&submission.cells[cell].hash)),
                    };
                    Ok(match &job.compact {
                        Some(compact) => {
                            JobPayload::with_compact(inline, compact.clone(), job.refs.clone())
                        }
                        None => JobPayload::inline(inline),
                    }
                    .with_span(span))
                })
                .collect::<Result<Vec<JobPayload>, ServeError>>()?;
            let settled = Mutex::new(hits);
            let results = self
                .dispatcher
                .dispatch_jobs(
                    &payloads,
                    &blob_set,
                    &|_| {
                        let mut settled = settled.lock().expect("no server panics");
                        *settled += 1;
                        progress(*settled, total, hits);
                    },
                    &|_, answer| check(answer),
                )
                .map_err(ServeError::from)?;
            for (&(cell, job), answer) in pending.iter().zip(results) {
                self.cache_put(&submission.cells[cell].jobs[job].hash, &answer)?;
                answers[cell][job] = Some(answer);
            }
        }

        // Phase 4: merge non-cached cells and persist the merges.
        let mut outcomes = Vec::with_capacity(submission.cells.len());
        for (cell_index, cell) in submission.cells.iter().enumerate() {
            if let Some(blob) = cell_cached[cell_index].take() {
                outcomes.push(CellOutcome {
                    hash: cell.hash.clone(),
                    cached: true,
                    blob,
                });
                continue;
            }
            let cell_answers: Vec<String> = answers[cell_index]
                .drain(..)
                .map(|slot| slot.expect("every pending job settled or dispatch failed"))
                .collect();
            let blob = (hooks.merge)(&cell_answers).map_err(|e| {
                ServeError::Server(format!("merging cell {} failed: {e}", cell.hash))
            })?;
            self.cache_put(&cell.hash, &blob)?;
            outcomes.push(CellOutcome {
                hash: cell.hash.clone(),
                cached: false,
                blob,
            });
        }
        crate::obs::record_submission(
            crp_obs::global(),
            total as u64,
            hits as u64,
            computed as u64,
        );
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        crp_obs::global().observe(crate::obs::SUBMIT_MICROS, micros);
        if crp_obs::trace_enabled() {
            let event = crp_obs::TraceEvent::new("serve.submit")
                .u64("jobs", total as u64)
                .u64("hits", hits as u64)
                .u64("computed", computed as u64)
                .u64("micros", micros);
            crp_obs::emit(&crp_obs::SpanContext::new(&submission_span).stamp(event));
        }
        Ok(SubmissionOutcome {
            cells: outcomes,
            jobs_total: total,
            job_hits: hits,
            computed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use crate::wire::{cell_hash, SubmissionCell, SubmissionJob};
    use crp_fleet::hash::content_hash;
    use crp_fleet::worker::ServeOptions;
    use crp_fleet::TcpWorker;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// A deterministic "shard worker": answers `echo:<payload>`, and
    /// counts executions so tests can prove what the cache absorbed.
    fn spawn_counting_worker() -> (String, Arc<AtomicUsize>) {
        let executions = Arc::new(AtomicUsize::new(0));
        let count = Arc::clone(&executions);
        let worker = TcpWorker::bind("127.0.0.1:0").unwrap();
        let addr = worker.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let handler = move |payload: &str| -> Result<String, String> {
                count.fetch_add(1, Ordering::SeqCst);
                Ok(format!("echo:{payload}"))
            };
            worker.serve_forever(&handler, &ServeOptions::default())
        });
        (addr, executions)
    }

    fn job(text: &str) -> SubmissionJob {
        SubmissionJob {
            hash: content_hash(text.as_bytes()),
            inline: Some(text.to_string()),
            compact: None,
            refs: Vec::new(),
        }
    }

    fn cell(jobs: Vec<SubmissionJob>) -> SubmissionCell {
        let hashes: Vec<String> = jobs.iter().map(|j| j.hash.clone()).collect();
        SubmissionCell {
            hash: cell_hash(&hashes),
            jobs,
        }
    }

    fn demo_submission() -> Submission {
        Submission {
            blobs: Vec::new(),
            cells: vec![
                cell(vec![job("cell-a shard 0"), job("cell-a shard 1")]),
                cell(vec![job("cell-b shard 0")]),
            ],
        }
    }

    fn merge(answers: &[String]) -> Result<String, String> {
        Ok(answers.join("+"))
    }

    fn check(answer: &str) -> Result<(), String> {
        if answer.starts_with("echo:") || answer.contains("+echo:") {
            Ok(())
        } else {
            Err(format!("unexpected answer {answer:?}"))
        }
    }

    fn no_canonicalizer(
        _compact: &str,
        _resolve: &dyn Fn(&str) -> Option<String>,
    ) -> Result<String, String> {
        Err("these tests ship inline payloads".to_string())
    }

    fn hooks() -> SubmissionHooks<'static> {
        SubmissionHooks {
            merge: &merge,
            check: &check,
            canonicalize: &no_canonicalizer,
        }
    }

    fn scratch_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("crp-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn submissions_settle_from_cache_on_resubmission() {
        let (addr, executions) = spawn_counting_worker();
        let server = SweepServer::bind(
            "127.0.0.1:0",
            vec![crp_fleet::WorkerEndpoint::tcp(addr)],
            Some(scratch_cache("resubmit")),
        )
        .unwrap();
        let submission = demo_submission();

        let first = server
            .run_submission(&submission, hooks(), &|_, _, _| {})
            .unwrap();
        assert_eq!(first.jobs_total, 3);
        assert_eq!(first.job_hits, 0);
        assert_eq!(first.computed, 3);
        assert_eq!(executions.load(Ordering::SeqCst), 3);
        assert_eq!(
            first.cells[0].blob,
            "echo:cell-a shard 0+echo:cell-a shard 1"
        );
        assert!(!first.cells[0].cached);

        // Bit-identical answers, zero worker executions, 100% hits.
        let second = server
            .run_submission(&submission, hooks(), &|_, _, _| {})
            .unwrap();
        assert_eq!(second.job_hits, 3);
        assert_eq!(second.computed, 0);
        assert!(second.cells.iter().all(|c| c.cached));
        assert_eq!(executions.load(Ordering::SeqCst), 3, "nothing recomputed");
        for (a, b) in first.cells.iter().zip(&second.cells) {
            assert_eq!(a.blob, b.blob, "cache hits must be bit-identical");
        }

        // An overlapping submission: one old cell, one new — only the
        // new cell's job is computed.
        let overlapping = Submission {
            blobs: Vec::new(),
            cells: vec![
                cell(vec![job("cell-a shard 0"), job("cell-a shard 1")]),
                cell(vec![job("cell-c shard 0")]),
            ],
        };
        let third = server
            .run_submission(&overlapping, hooks(), &|_, _, _| {})
            .unwrap();
        assert_eq!(third.job_hits, 2);
        assert_eq!(third.computed, 1);
        assert_eq!(executions.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn corrupt_cache_entries_are_recomputed_not_served() {
        let (addr, executions) = spawn_counting_worker();
        let cache = scratch_cache("corrupt-recompute");
        let server = SweepServer::bind(
            "127.0.0.1:0",
            vec![crp_fleet::WorkerEndpoint::tcp(addr)],
            Some(cache.clone()),
        )
        .unwrap();
        let submission = demo_submission();
        let first = server
            .run_submission(&submission, hooks(), &|_, _, _| {})
            .unwrap();

        // Vandalise one job entry and one cell entry on disk.
        for key in [&submission.cells[0].jobs[0].hash, &submission.cells[0].hash] {
            let path = cache.dir().join(&key[..2]).join(format!("{key}.crp"));
            std::fs::write(&path, b"crp-cache v1\ngarbage").unwrap();
            assert!(
                matches!(cache.get(key), Err(ServeError::CorruptCache { .. })),
                "vandalised entry must read as a typed corruption error"
            );
        }

        let executed_before = executions.load(Ordering::SeqCst);
        let again = server
            .run_submission(&submission, hooks(), &|_, _, _| {})
            .unwrap();
        // Cell b still hits; cell a recomputes exactly its corrupted job
        // (the intact shard-1 job entry still serves from cache).
        assert_eq!(again.computed, 1);
        assert_eq!(executions.load(Ordering::SeqCst), executed_before + 1);
        assert_eq!(
            again.cells[0].blob, first.cells[0].blob,
            "recomputed cell is bit-identical to the original"
        );
        // The overwrite healed the entries.
        assert!(cache.get(&submission.cells[0].hash).unwrap().is_some());
    }

    #[test]
    fn the_daemon_serves_clients_over_tcp_and_shuts_down() {
        let (addr, _) = spawn_counting_worker();
        let server = SweepServer::bind(
            "127.0.0.1:0",
            vec![crp_fleet::WorkerEndpoint::tcp(addr)],
            Some(scratch_cache("daemon")),
        )
        .unwrap();
        let service_addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.serve(hooks()));

        let submission = demo_submission();
        let mut client = ServeClient::connect(service_addr.as_str()).unwrap();
        let progress_calls = AtomicUsize::new(0);
        let outcome = client
            .submit(&submission, |_, _, _| {
                progress_calls.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(outcome.jobs_total, 3);
        assert_eq!(outcome.computed, 3);
        assert!(progress_calls.load(Ordering::SeqCst) >= 1);

        // Second client, same submission: served from cache.  (The first
        // client must actually disconnect — the daemon serves one
        // connection at a time.)
        drop(client);
        let mut client = ServeClient::connect(service_addr.as_str()).unwrap();
        let outcome = client.submit(&submission, |_, _, _| {}).unwrap();
        assert_eq!(outcome.job_hits, 3);

        // The live stats report renders the shared cache summary, the
        // workspace counters, and the per-worker fleet health.
        let report = client.stats().unwrap();
        assert!(report.contains("job cache hits"), "{report}");
        assert!(
            report.contains(crate::obs::CACHE_CELL_HIT),
            "cell hits from the resubmission must show: {report}"
        );
        assert!(report.contains("counter fleet.dispatch"), "{report}");
        assert!(report.contains("worker "), "{report}");
        client.shutdown_server().unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn tenant_hellos_key_counters_and_stats_carry_fleet_metrics() {
        let (addr, _) = spawn_counting_worker();
        let server = SweepServer::bind(
            "127.0.0.1:0",
            vec![crp_fleet::WorkerEndpoint::tcp(addr)],
            Some(scratch_cache("tenant")),
        )
        .unwrap();
        let service_addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.serve(hooks()));

        // The raw tenant name is sanitised server-side.
        let mut client = ServeClient::connect_as(service_addr.as_str(), "team red/7").unwrap();
        client.submit(&demo_submission(), |_, _, _| {}).unwrap();
        let report = client.stats().unwrap();
        assert!(
            report.contains("tenant team-red-7: submits=1 jobs=3"),
            "{report}"
        );
        assert!(
            report.contains("counter serve.tenant.team-red-7.jobs 3"),
            "{report}"
        );
        // The fleet-wide metrics pull: a rollup plus the (v3) worker's
        // own shipped snapshot.
        assert!(
            report.contains("fleet metrics: 1 reporting, 0 unavailable"),
            "{report}"
        );
        assert!(report.contains("rollup counter "), "{report}");
        assert!(report.contains(" metrics:\n"), "{report}");
        client.shutdown_server().unwrap();
        daemon.join().unwrap().unwrap();
    }

    #[test]
    fn elastically_joined_workers_serve_submissions() {
        // No fixed endpoints: the whole fleet joins through the
        // registration listener.
        let server = SweepServer::bind("127.0.0.1:0", Vec::new(), None).unwrap();
        let join_addr = server
            .listen_for_workers("127.0.0.1:0")
            .unwrap()
            .to_string();
        std::thread::spawn(move || {
            let handler =
                |payload: &str| -> Result<String, String> { Ok(format!("echo:{payload}")) };
            let _ = crp_fleet::join_fleet(join_addr.as_str(), &handler, &ServeOptions::default());
        });
        let outcome = server
            .run_submission(&demo_submission(), hooks(), &|_, _, _| {})
            .unwrap();
        assert_eq!(outcome.computed, 3);
        assert_eq!(
            outcome.cells[0].blob,
            "echo:cell-a shard 0+echo:cell-a shard 1"
        );
    }

    #[test]
    fn bad_submissions_get_a_typed_error_frame() {
        let server = SweepServer::bind("127.0.0.1:0", Vec::new(), None).unwrap();
        let service_addr = server.local_addr().unwrap().to_string();
        let daemon = std::thread::spawn(move || server.serve(hooks()));

        let mut tampered = demo_submission();
        tampered.cells[0].jobs[0]
            .inline
            .as_mut()
            .expect("demo jobs ship inline payloads")
            .push('!');
        let mut client = ServeClient::connect(service_addr.as_str()).unwrap();
        let err = client.submit(&tampered, |_, _, _| {}).unwrap_err();
        assert!(matches!(err, ServeError::Server(_)), "got {err}");
        assert!(err.to_string().contains("hash mismatch"), "{err}");
        client.shutdown_server().unwrap();
        daemon.join().unwrap().unwrap();
    }
}
