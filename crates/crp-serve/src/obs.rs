//! Serve-side observability: the `serve.*` counter names, the cache
//! probe/put instrumentation hooks, and the single cache-summary
//! formatter shared by the `submit` CLI line and the daemon `stats`
//! report — both derive from the same counters through the same code,
//! so they can never disagree.
//!
//! Counters and trace events never influence what is served: probes
//! and puts behave identically with observability on or off, and the
//! trace emission is guarded by [`crp_obs::trace_enabled`].

use crp_obs::{MetricsSnapshot, TraceEvent};

/// Counter: whole cells served from the cell cache.
pub const CACHE_CELL_HIT: &str = "serve.cache.cell_hit";
/// Counter: individual jobs served from the job cache.
pub const CACHE_JOB_HIT: &str = "serve.cache.job_hit";
/// Counter: cache probes that found nothing usable.
pub const CACHE_MISS: &str = "serve.cache.miss";
/// Counter: corrupt or invalid entries detected at probe time; the
/// recompute's write-back overwrites (heals) them.
pub const CACHE_HEAL: &str = "serve.cache.heal";
/// Counter: bytes served out of the cache.
pub const CACHE_READ_BYTES: &str = "serve.cache.read_bytes";
/// Counter: bytes written into the cache.
pub const CACHE_WRITE_BYTES: &str = "serve.cache.write_bytes";
/// Counter: submissions executed.
pub const SUBMIT: &str = "serve.submit";
/// Counter: jobs carried by executed submissions.
pub const SUBMIT_JOBS: &str = "serve.submit.jobs";
/// Counter: jobs settled from the cache (cell- or job-level).
pub const SUBMIT_HITS: &str = "serve.submit.hits";
/// Counter: jobs computed on the fleet.
pub const SUBMIT_COMPUTED: &str = "serve.submit.computed";
/// Histogram: wall-clock microseconds per executed submission.
pub const SUBMIT_MICROS: &str = "serve.submit_micros";
/// Prefix of the per-tenant counters: `serve.tenant.<id>.submit`,
/// `.jobs`, `.hits` and `.computed`, keyed by the sanitised tenant id
/// of the connection's `client-hello` (or `anonymous`).
pub const TENANT_PREFIX: &str = "serve.tenant.";

/// Maximum length of a sanitised tenant id.
pub const TENANT_MAX_LEN: usize = 32;

/// Sanitises a client-supplied tenant id into a counter-name-safe
/// token: characters outside `[A-Za-z0-9_-]` become `-`, the result is
/// capped at [`TENANT_MAX_LEN`] characters, and an empty input maps to
/// `anonymous`.
pub fn sanitize_tenant(raw: &str) -> String {
    let cleaned: String = raw
        .chars()
        .take(TENANT_MAX_LEN)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "anonymous".to_string()
    } else {
        cleaned
    }
}

/// Records the aggregate numbers of one executed submission into the
/// submitting tenant's `serve.tenant.<id>.*` counters.  `tenant` must
/// already be sanitised (the server sanitises at `client-hello` time).
pub fn record_tenant_submission(
    registry: &crp_obs::MetricsRegistry,
    tenant: &str,
    jobs: u64,
    hits: u64,
    computed: u64,
) {
    registry.inc(&format!("{TENANT_PREFIX}{tenant}.submit"));
    registry.add(&format!("{TENANT_PREFIX}{tenant}.jobs"), jobs);
    registry.add(&format!("{TENANT_PREFIX}{tenant}.hits"), hits);
    registry.add(&format!("{TENANT_PREFIX}{tenant}.computed"), computed);
}

/// Renders the per-tenant summary section of the daemon `stats` report
/// from the `serve.tenant.<id>.*` counters of a snapshot: one
/// deterministic line per tenant in sorted order, empty when no tenant
/// has submitted yet.
pub fn tenant_summary(snapshot: &MetricsSnapshot) -> String {
    let mut tenants: std::collections::BTreeMap<&str, [u64; 4]> = std::collections::BTreeMap::new();
    for (name, value) in snapshot.counters() {
        let Some(rest) = name.strip_prefix(TENANT_PREFIX) else {
            continue;
        };
        let Some((tenant, field)) = rest.rsplit_once('.') else {
            continue;
        };
        let slot = match field {
            "submit" => 0,
            "jobs" => 1,
            "hits" => 2,
            "computed" => 3,
            _ => continue,
        };
        tenants.entry(tenant).or_default()[slot] = value;
    }
    let mut out = String::new();
    for (tenant, [submits, jobs, hits, computed]) in tenants {
        out.push_str(&format!(
            "tenant {tenant}: submits={submits} jobs={jobs} hits={hits} computed={computed}\n"
        ));
    }
    out
}

/// Formats the canonical cache summary — the one wording both the
/// `submit` CLI stderr line and the daemon `stats` report print.
pub fn cache_summary(hits: u64, total: u64, computed: u64) -> String {
    let percent = (hits * 100).checked_div(total).unwrap_or(100);
    format!("{hits}/{total} job cache hits ({percent}%), {computed} computed on the fleet")
}

/// Derives the cache summary from the `serve.submit.*` counters of a
/// registry snapshot.
pub fn cache_summary_from(snapshot: &MetricsSnapshot) -> String {
    cache_summary(
        snapshot.counter(SUBMIT_HITS),
        snapshot.counter(SUBMIT_JOBS),
        snapshot.counter(SUBMIT_COMPUTED),
    )
}

/// Records the aggregate numbers of one executed submission into the
/// `serve.submit.*` counters of `registry`.  The server calls this
/// after every submission; the `submit` CLI calls it on the outcome it
/// received so its summary line is counter-derived too.
pub fn record_submission(registry: &crp_obs::MetricsRegistry, jobs: u64, hits: u64, computed: u64) {
    registry.inc(SUBMIT);
    registry.add(SUBMIT_JOBS, jobs);
    registry.add(SUBMIT_HITS, hits);
    registry.add(SUBMIT_COMPUTED, computed);
}

/// One cache probe served a usable value.
pub(crate) fn probe_hit(kind: &'static str, key: &str, bytes: usize) {
    let registry = crp_obs::global();
    registry.inc(match kind {
        "cell" => CACHE_CELL_HIT,
        _ => CACHE_JOB_HIT,
    });
    registry.add(CACHE_READ_BYTES, bytes as u64);
    if crp_obs::trace_enabled() {
        crp_obs::emit(
            &TraceEvent::new("cache.hit")
                .str("kind", kind)
                .str("key", key),
        );
    }
}

/// One cache probe found no entry.
pub(crate) fn probe_miss(kind: &'static str, key: &str) {
    crp_obs::global().inc(CACHE_MISS);
    if crp_obs::trace_enabled() {
        crp_obs::emit(
            &TraceEvent::new("cache.miss")
                .str("kind", kind)
                .str("key", key),
        );
    }
}

/// One cache probe found a corrupt or invalid entry; the recompute
/// path will overwrite it.
pub(crate) fn probe_heal(kind: &'static str, key: &str) {
    crp_obs::global().inc(CACHE_HEAL);
    if crp_obs::trace_enabled() {
        crp_obs::emit(
            &TraceEvent::new("cache.heal")
                .str("kind", kind)
                .str("key", key),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_ids_are_sanitised_to_counter_safe_tokens() {
        assert_eq!(sanitize_tenant("team-red_7"), "team-red_7");
        assert_eq!(sanitize_tenant("a b/c"), "a-b-c");
        assert_eq!(sanitize_tenant(""), "anonymous");
        let long = "x".repeat(100);
        assert_eq!(sanitize_tenant(&long).len(), TENANT_MAX_LEN);
    }

    #[test]
    fn tenant_summary_groups_counters_per_tenant_in_sorted_order() {
        let registry = crp_obs::MetricsRegistry::default();
        record_tenant_submission(&registry, "beta", 4, 1, 3);
        record_tenant_submission(&registry, "alpha", 2, 2, 0);
        record_tenant_submission(&registry, "beta", 6, 6, 0);
        let summary = tenant_summary(&registry.snapshot());
        assert_eq!(
            summary,
            "tenant alpha: submits=1 jobs=2 hits=2 computed=0\n\
             tenant beta: submits=2 jobs=10 hits=7 computed=3\n"
        );
        assert_eq!(tenant_summary(&MetricsSnapshot::default()), "");
    }
}
