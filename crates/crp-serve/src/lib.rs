//! The persistent sweep service: a daemon that keeps a warm fleet of
//! workers between CLI invocations and memoises every result in a
//! content-addressed cache.
//!
//! The paper's evaluation is a grid of protocol × scenario sweeps, and
//! adversarial-scenario studies re-run those grids constantly — mostly
//! recomputing cells that have been computed before.  This crate removes
//! both recurring costs:
//!
//! * **Process lifecycle** — [`SweepServer`] owns a
//!   [`crp_fleet::Dispatcher`] whose worker connections stay warm across
//!   submissions, so back-to-back sweeps never re-pay process spawn,
//!   handshake, or scenario shipping.
//! * **Recomputation** — every job and every sweep cell is keyed by the
//!   [`crp_fleet::content_hash`] of its canonical wire encoding, and the
//!   [`ResultCache`] persists each answer as a bit-exact blob.  A
//!   resubmitted (or overlapping) sweep settles its cached cells without
//!   touching a worker, returning *bit-identical* statistics because the
//!   blobs are the exact accumulator bytes a worker once produced.
//!
//! Like `crp-fleet` underneath it, the crate is payload-agnostic: jobs,
//! answers and blobs are opaque strings, cells are merged by a
//! caller-supplied function, and answers are vetted by a caller-supplied
//! validator.  `crp-sim` layers its `ShardSpec` / `TrialAccumulator`
//! semantics on top, which keeps the dependency arrow `crp-sim` →
//! `crp-serve` → `crp-fleet` and lets the `crp_experiments` binary host
//! both the daemon (`serve`) and the client (`submit`).
//!
//! The layers:
//!
//! * [`cache`] — [`ResultCache`]: the on-disk content-addressed store
//!   (atomic writes, self-verifying entries, typed corruption errors).
//! * [`wire`] — the framed service protocol: versioned
//!   [`wire::ServeMessage`] frames (`submit` / `progress` / `result`)
//!   and the [`wire::Submission`] / [`wire::SubmissionOutcome`] body
//!   codecs.
//! * [`server`] — [`SweepServer`]: the accept loop and the
//!   cache-then-dispatch submission executor.
//! * [`client`] — [`ServeClient`]: connect, submit, stream progress,
//!   collect the result.
//! * [`obs`] — the `serve.*` counter names, cache instrumentation,
//!   the per-tenant `serve.tenant.<id>.*` accounting, and the shared
//!   cache-summary formatter behind both the `submit` CLI line and the
//!   daemon's framed `stats` report.
//! * [`watch`] — the `stats --watch` rate computer: counter deltas
//!   between successive reports rendered as deterministic per-second
//!   rates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod obs;
pub mod server;
pub mod watch;
pub mod wire;

use std::error::Error;
use std::fmt;

pub use cache::ResultCache;
pub use client::ServeClient;
pub use obs::{
    cache_summary, cache_summary_from, record_submission, record_tenant_submission,
    sanitize_tenant, tenant_summary,
};
pub use server::{AnswerCheck, Canonicalizer, CellMerger, SubmissionHooks, SweepServer};
pub use watch::{counters_from_report, rates_line};
pub use wire::{
    CellOutcome, ServeMessage, Submission, SubmissionCell, SubmissionJob, SubmissionOutcome,
    SERVICE_VERSION,
};

use crp_fleet::FleetError;

/// Errors produced by the sweep service, its cache, and its clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// An I/O operation (socket, cache file) failed.
    Io(String),
    /// A service frame or body was malformed.
    Malformed(String),
    /// A cache entry exists but is corrupt or truncated; the caller
    /// recomputes and overwrites it.
    CorruptCache {
        /// The entry's content key.
        key: String,
        /// What was wrong with it.
        what: String,
    },
    /// A submission referenced or produced inconsistent hashes.
    HashMismatch {
        /// What was being hashed.
        what: String,
        /// The hash the submission claimed.
        claimed: String,
        /// The hash actually computed.
        actual: String,
    },
    /// The underlying fleet transport or dispatcher failed.
    Fleet(String),
    /// The server answered a submission with a typed error.
    Server(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(what) => write!(f, "sweep service I/O error: {what}"),
            ServeError::Malformed(what) => write!(f, "malformed service message: {what}"),
            ServeError::CorruptCache { key, what } => {
                write!(f, "corrupt cache entry {key}: {what}")
            }
            ServeError::HashMismatch {
                what,
                claimed,
                actual,
            } => write!(
                f,
                "{what} hash mismatch: submission claims {claimed}, content hashes to {actual}"
            ),
            ServeError::Fleet(what) => write!(f, "fleet dispatch failed: {what}"),
            ServeError::Server(what) => write!(f, "the sweep server reported: {what}"),
        }
    }
}

impl Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(err: std::io::Error) -> Self {
        ServeError::Io(err.to_string())
    }
}

impl From<FleetError> for ServeError {
    fn from(err: FleetError) -> Self {
        match err {
            FleetError::Io(what) => ServeError::Io(what),
            FleetError::Malformed(what) => ServeError::Malformed(what),
            other => ServeError::Fleet(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_failure() {
        assert!(ServeError::Io("broken".into())
            .to_string()
            .contains("broken"));
        assert!(ServeError::CorruptCache {
            key: "abc".into(),
            what: "truncated".into(),
        }
        .to_string()
        .contains("truncated"));
        assert!(ServeError::HashMismatch {
            what: "job".into(),
            claimed: "x".into(),
            actual: "y".into(),
        }
        .to_string()
        .contains("mismatch"));
        let err: ServeError = FleetError::Closed.into();
        assert!(matches!(err, ServeError::Fleet(_)));
        let err: ServeError = FleetError::Malformed("bad".into()).into();
        assert!(matches!(err, ServeError::Malformed(_)));
    }
}
