//! The `stats --watch` rate computer: parse successive daemon stats
//! reports, diff their counters, and render deterministic per-second
//! rates.
//!
//! Rates are pure functions of two reports and the polling interval —
//! no wall clocks are read here — so the formatter is unit-testable
//! and two watchers polling the same daemon print the same lines.

use std::collections::BTreeMap;

use crate::obs::{CACHE_READ_BYTES, CACHE_WRITE_BYTES, SUBMIT_HITS, SUBMIT_JOBS};

/// Extracts the daemon's own `counter <name> <value>` lines from a
/// rendered stats report into a name → value map.  Only unindented,
/// unprefixed lines count: the `rollup counter …` lines of the fleet
/// metrics section and the indented per-worker snapshot lines belong
/// to workers, not the daemon, and are skipped.
pub fn counters_from_report(report: &str) -> BTreeMap<String, u64> {
    let mut counters = BTreeMap::new();
    for line in report.lines() {
        let Some(rest) = line.strip_prefix("counter ") else {
            continue;
        };
        let mut tokens = rest.split_ascii_whitespace();
        if let (Some(name), Some(value)) = (tokens.next(), tokens.next()) {
            if let Ok(value) = value.parse::<u64>() {
                counters.insert(name.to_string(), value);
            }
        }
    }
    counters
}

/// Renders one watch line from the counter deltas between two
/// successive reports polled `interval_secs` apart: jobs/s, the cache
/// hit-rate of the interval's jobs, and cache read/write bytes/s.
/// Counters that went backwards (a restarted daemon) read as zero
/// deltas rather than underflowing.
pub fn rates_line(
    prev: &BTreeMap<String, u64>,
    next: &BTreeMap<String, u64>,
    interval_secs: u64,
) -> String {
    let delta = |name: &str| -> u64 {
        next.get(name)
            .copied()
            .unwrap_or(0)
            .saturating_sub(prev.get(name).copied().unwrap_or(0))
    };
    let secs = interval_secs.max(1) as f64;
    let jobs = delta(SUBMIT_JOBS);
    let hits = delta(SUBMIT_HITS);
    let read = delta(CACHE_READ_BYTES);
    let write = delta(CACHE_WRITE_BYTES);
    let hit_rate = if jobs == 0 {
        0.0
    } else {
        hits as f64 * 100.0 / jobs as f64
    };
    format!(
        "watch: {:.1} jobs/s, {hit_rate:.1}% cache hit-rate, {:.1} read B/s, {:.1} write B/s",
        jobs as f64 / secs,
        read as f64 / secs,
        write as f64 / secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_the_daemons_own_counter_lines_are_parsed() {
        let report = "submit: 2/4 job cache hits (50%), 2 computed on the fleet\n\
                      counter serve.submit.jobs 4\n\
                      counter serve.submit.hits 2\n\
                      gauge fleet.in_flight 0\n\
                      rollup counter kernel.calls 900\n\
                      worker 127.0.0.1:9000 metrics:\n  \
                      counter kernel.calls 900\n";
        let counters = counters_from_report(report);
        assert_eq!(counters.get("serve.submit.jobs"), Some(&4));
        assert_eq!(counters.get("serve.submit.hits"), Some(&2));
        assert!(
            !counters.contains_key("kernel.calls"),
            "rollup and per-worker lines must not leak into the daemon's counters"
        );
    }

    #[test]
    fn rates_come_from_counter_deltas_and_render_deterministically() {
        let mut prev = BTreeMap::new();
        prev.insert(SUBMIT_JOBS.to_string(), 10);
        prev.insert(SUBMIT_HITS.to_string(), 4);
        prev.insert(CACHE_READ_BYTES.to_string(), 1000);
        let mut next = prev.clone();
        next.insert(SUBMIT_JOBS.to_string(), 30);
        next.insert(SUBMIT_HITS.to_string(), 9);
        next.insert(CACHE_READ_BYTES.to_string(), 1500);
        next.insert(CACHE_WRITE_BYTES.to_string(), 250);
        assert_eq!(
            rates_line(&prev, &next, 2),
            "watch: 10.0 jobs/s, 25.0% cache hit-rate, 250.0 read B/s, 125.0 write B/s"
        );
    }

    #[test]
    fn an_idle_interval_and_a_restarted_daemon_both_read_as_zero() {
        let steady = counters_from_report("counter serve.submit.jobs 8\n");
        assert_eq!(
            rates_line(&steady, &steady, 5),
            "watch: 0.0 jobs/s, 0.0% cache hit-rate, 0.0 read B/s, 0.0 write B/s"
        );
        let restarted = counters_from_report("counter serve.submit.jobs 1\n");
        assert!(rates_line(&steady, &restarted, 5).starts_with("watch: 0.0 jobs/s"));
    }
}
