//! The sweep-service client: connect, submit, stream progress, collect
//! the result.

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use crp_fleet::frame::{read_frame, write_frame};

use crate::wire::{ServeMessage, Submission, SubmissionOutcome, SERVICE_VERSION};
use crate::ServeError;

/// One live connection to a [`crate::SweepServer`].
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl ServeClient {
    /// Dials the daemon and checks its `serve-hello` greeting (so a
    /// worker port, whose greeting differs, fails fast with a typed
    /// error instead of a confusing parse failure later).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for dial failures, [`ServeError::Malformed`]
    /// for a peer that does not speak the service protocol.
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, ServeError> {
        Self::dial(addr, None)
    }

    /// Like [`ServeClient::connect`], but names the tenant this
    /// connection submits on behalf of: a `client-hello` frame follows
    /// the greeting, and the daemon accounts every submission on the
    /// connection to `serve.tenant.<tenant>.*` counters (sanitised
    /// server-side).  Plain [`ServeClient::connect`] connections are
    /// accounted to the `anonymous` tenant.
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::connect`].
    pub fn connect_as(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        tenant: &str,
    ) -> Result<Self, ServeError> {
        Self::dial(addr, Some(tenant))
    }

    fn dial(
        addr: impl ToSocketAddrs + std::fmt::Debug,
        tenant: Option<&str>,
    ) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(&addr)
            .map_err(|e| ServeError::Io(format!("cannot reach sweep server {addr:?}: {e}")))?;
        stream.set_nodelay(true).ok();
        let mut client = Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 1,
        };
        let frame = read_frame(&mut client.reader)?.ok_or_else(|| {
            ServeError::Io("the sweep server closed the connection before its hello".to_string())
        })?;
        match ServeMessage::decode(&frame)? {
            ServeMessage::Hello { version } if version == SERVICE_VERSION => {}
            ServeMessage::Hello { version } => {
                return Err(ServeError::Malformed(format!(
                    "server speaks service protocol v{version}, client requires v{SERVICE_VERSION}"
                )))
            }
            other => {
                return Err(ServeError::Malformed(format!(
                    "expected serve-hello, server sent {other:?}"
                )))
            }
        }
        if let Some(tenant) = tenant {
            write_frame(
                &mut client.writer,
                &ServeMessage::ClientHello {
                    tenant: crate::obs::sanitize_tenant(tenant),
                }
                .encode(),
            )?;
        }
        Ok(client)
    }

    /// Submits a sweep and blocks until its result, invoking `progress`
    /// with `(settled_jobs, total_jobs, cache_hits)` as the server
    /// streams updates.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed frames, and
    /// [`ServeError::Server`] when the daemon answered with an error
    /// frame.
    pub fn submit(
        &mut self,
        submission: &Submission,
        mut progress: impl FnMut(usize, usize, usize),
    ) -> Result<SubmissionOutcome, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(
            &mut self.writer,
            &ServeMessage::Submit {
                id,
                body: submission.encode(),
            }
            .encode(),
        )?;
        loop {
            let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
                ServeError::Io("the sweep server closed the connection mid-submission".to_string())
            })?;
            match ServeMessage::decode(&frame)? {
                ServeMessage::Progress {
                    id: got,
                    completed,
                    total,
                    hits,
                } if got == id => progress(completed, total, hits),
                ServeMessage::Result { id: got, body } if got == id => {
                    return SubmissionOutcome::decode(&body)
                }
                ServeMessage::Error { id: got, message } if got == id => {
                    return Err(ServeError::Server(message))
                }
                other => {
                    return Err(ServeError::Malformed(format!(
                        "expected an answer to submission {id}, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Requests the daemon's live observability report — the rendered
    /// workspace metrics registry plus the per-worker fleet health
    /// snapshot — as a deterministic text body.
    ///
    /// # Errors
    ///
    /// Transport failures, malformed frames, and
    /// [`ServeError::Server`] when the daemon answered with an error
    /// frame.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &ServeMessage::Stats { id }.encode())?;
        let frame = read_frame(&mut self.reader)?.ok_or_else(|| {
            ServeError::Io("the sweep server closed the connection mid-stats-request".to_string())
        })?;
        match ServeMessage::decode(&frame)? {
            ServeMessage::StatsReport { id: got, body } if got == id => Ok(body),
            ServeMessage::Error { id: got, message } if got == id => {
                Err(ServeError::Server(message))
            }
            other => Err(ServeError::Malformed(format!(
                "expected an answer to stats request {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down (used by tests and CI teardown) and
    /// consumes the client.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown_server(mut self) -> Result<(), ServeError> {
        write_frame(&mut self.writer, &ServeMessage::Shutdown.encode())?;
        Ok(())
    }
}
