//! The framed service protocol between `submit` clients and the sweep
//! daemon, riding on [`crp_fleet::frame`] like the worker protocol does.
//!
//! A connection's conversation:
//!
//! ```text
//! server -> client   serve-hello v1
//! client -> server   submit 1\n<submission body>
//! server -> client   progress 1 4 16 2        (completed / total / cache hits)
//! server -> client   ...
//! server -> client   result 1\n<result body>  (or: error 1\n<message>)
//! ```
//!
//! Bodies are versioned text with byte-exact payload sections, so job
//! payloads and result blobs may contain anything.  Everything is keyed
//! by [`crp_fleet::content_hash`]es the *client* computes and the
//! *server* verifies — a submission whose hashes do not match its bytes
//! is rejected before it can poison the cache.

use crp_fleet::hash::{content_hash, is_content_hash};

use crate::ServeError;

/// Version of the client ↔ daemon service protocol (independent of the
/// dispatcher ↔ worker fleet protocol underneath).
pub const SERVICE_VERSION: u32 = 1;

/// One service message, as carried in a fleet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeMessage {
    /// Server → client, first frame on every connection — so a client
    /// that accidentally dials a *worker* port (whose greeting is a
    /// plain `hello`) fails fast with a typed error.
    Hello {
        /// The server's [`SERVICE_VERSION`].
        version: u32,
    },
    /// Client → server: run this submission.
    Submit {
        /// Client-chosen id echoed in every answer frame.
        id: u64,
        /// An encoded [`Submission`].
        body: String,
    },
    /// Server → client: live progress of a running submission.
    Progress {
        /// Echo of the submission id.
        id: u64,
        /// Jobs settled so far (cache hits and computed).
        completed: usize,
        /// Total jobs in the submission.
        total: usize,
        /// How many of the settled jobs came from the cache.
        hits: usize,
    },
    /// Server → client: the submission's outcome.
    Result {
        /// Echo of the submission id.
        id: u64,
        /// An encoded [`SubmissionOutcome`].
        body: String,
    },
    /// Server → client: the submission failed as a whole.
    Error {
        /// Echo of the submission id.
        id: u64,
        /// Human-readable failure.
        message: String,
    },
    /// Client → server: dump the daemon's live observability state
    /// (cache counters, submission timings, per-worker fleet health).
    Stats {
        /// Client-chosen id echoed in the report frame.
        id: u64,
    },
    /// Server → client: the text report a [`ServeMessage::Stats`]
    /// request asked for — the deterministic render of the daemon's
    /// metrics snapshot plus the fleet health snapshot.
    StatsReport {
        /// Echo of the stats request id.
        id: u64,
        /// The rendered report.
        body: String,
    },
    /// Client → server, optional, at most once per connection: name the
    /// tenant this connection submits on behalf of.  The server keys its
    /// `serve.tenant.<id>.*` counters by it; connections that never send
    /// one are accounted to the `anonymous` tenant, so pre-existing
    /// clients keep working unchanged.
    ClientHello {
        /// The tenant identifier (the server sanitises it to
        /// `[A-Za-z0-9_-]`, capped at 32 characters).
        tenant: String,
    },
    /// Client → server: stop the daemon (CI teardown and tests; a
    /// production deployment just kills the process).
    Shutdown,
}

impl ServeMessage {
    /// Encodes the message into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServeMessage::Hello { version } => format!("serve-hello v{version}"),
            ServeMessage::Submit { id, body } => format!("submit {id}\n{body}"),
            ServeMessage::Progress {
                id,
                completed,
                total,
                hits,
            } => format!("progress {id} {completed} {total} {hits}"),
            ServeMessage::Result { id, body } => format!("result {id}\n{body}"),
            ServeMessage::Error { id, message } => format!("error {id}\n{message}"),
            ServeMessage::Stats { id } => format!("stats {id}"),
            ServeMessage::StatsReport { id, body } => format!("stats-report {id}\n{body}"),
            ServeMessage::ClientHello { tenant } => format!("client-hello {tenant}"),
            ServeMessage::Shutdown => "serve-shutdown".to_string(),
        }
        .into_bytes()
    }

    /// Decodes a frame payload.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] for non-UTF-8 payloads, unknown message
    /// names, and missing or unparsable fields.
    pub fn decode(bytes: &[u8]) -> Result<Self, ServeError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| ServeError::Malformed(format!("message is not UTF-8: {e}")))?;
        let (head, body) = match text.split_once('\n') {
            Some((head, body)) => (head, body),
            None => (text, ""),
        };
        let mut tokens = head.split_ascii_whitespace();
        let name = tokens
            .next()
            .ok_or_else(|| ServeError::Malformed("empty service message".to_string()))?;
        let mut field = |label: &str| -> Result<u64, ServeError> {
            tokens
                .next()
                .ok_or_else(|| ServeError::Malformed(format!("{label} is missing a field")))?
                .parse::<u64>()
                .map_err(|e| ServeError::Malformed(format!("bad {label} field: {e}")))
        };
        match name {
            "serve-hello" => {
                let version = tokens
                    .next()
                    .and_then(|token| token.strip_prefix('v'))
                    .and_then(|token| token.parse::<u32>().ok())
                    .ok_or_else(|| {
                        ServeError::Malformed(format!("bad serve-hello version in {head:?}"))
                    })?;
                Ok(ServeMessage::Hello { version })
            }
            "submit" => Ok(ServeMessage::Submit {
                id: field("submit")?,
                body: body.to_string(),
            }),
            "progress" => Ok(ServeMessage::Progress {
                id: field("progress")?,
                completed: field("progress")? as usize,
                total: field("progress")? as usize,
                hits: field("progress")? as usize,
            }),
            "result" => Ok(ServeMessage::Result {
                id: field("result")?,
                body: body.to_string(),
            }),
            "error" => Ok(ServeMessage::Error {
                id: field("error")?,
                message: body.to_string(),
            }),
            "stats" => Ok(ServeMessage::Stats {
                id: field("stats")?,
            }),
            "stats-report" => Ok(ServeMessage::StatsReport {
                id: field("stats-report")?,
                body: body.to_string(),
            }),
            "client-hello" => Ok(ServeMessage::ClientHello {
                tenant: tokens
                    .next()
                    .ok_or_else(|| {
                        ServeError::Malformed("client-hello is missing a tenant".to_string())
                    })?
                    .to_string(),
            }),
            "serve-shutdown" => Ok(ServeMessage::Shutdown),
            // A fleet worker's greeting, reported specifically because
            // pointing `submit` at a worker port is an easy mistake.
            "hello" => Err(ServeError::Malformed(
                "the peer speaks the fleet *worker* protocol, not the sweep service; \
                 is this a worker port?"
                    .to_string(),
            )),
            other => Err(ServeError::Malformed(format!(
                "unknown service message {other:?}"
            ))),
        }
    }
}

/// One job of a submission: its cache key (the content hash of the
/// inline payload) plus the payload forms the dispatcher can ship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionJob {
    /// `content_hash(canonical inline encoding)` — the job's identity
    /// and cache key.
    pub hash: String,
    /// The canonical self-contained payload.  `None` when the job ships
    /// compact-only — the server then reconstructs (and hash-verifies)
    /// the canonical form from `compact` + the blob table through its
    /// canonicalizer, so large masses never travel once per shard.
    pub inline: Option<String>,
    /// The compact payload referencing blobs by hash, if any.
    pub compact: Option<String>,
    /// The blob hashes `compact` references.
    pub refs: Vec<String>,
}

/// One cell of a submission: an ordered list of jobs whose answers merge
/// into the cell's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmissionCell {
    /// The cell's cache key — see [`cell_hash`].
    pub hash: String,
    /// The cell's jobs, in merge order.
    pub jobs: Vec<SubmissionJob>,
}

/// A complete sweep submission: cells plus the blob table their compact
/// payloads reference.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Submission {
    /// `(hash, blob)` pairs, each blob shipped to a worker at most once.
    pub blobs: Vec<(String, String)>,
    /// The cells, in grid order.
    pub cells: Vec<SubmissionCell>,
}

/// The canonical cache key of a cell: the content hash of its ordered
/// job-hash list (newline-terminated lines).  Any change to any job —
/// protocol spec, masses, plan, seed, shard count or order — changes a
/// job hash and therefore the cell key.
pub fn cell_hash(job_hashes: &[String]) -> String {
    let mut text = String::with_capacity(job_hashes.len() * 65);
    for hash in job_hashes {
        text.push_str(hash);
        text.push('\n');
    }
    content_hash(text.as_bytes())
}

/// A byte-exact cursor over a body: head lines via [`Cursor::line`],
/// payload sections via [`Cursor::take`].
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self { rest: text }
    }

    fn line(&mut self) -> Result<&'a str, ServeError> {
        let (line, rest) = self
            .rest
            .split_once('\n')
            .ok_or_else(|| ServeError::Malformed("body ended mid-line".to_string()))?;
        self.rest = rest;
        Ok(line)
    }

    /// Takes exactly `n` bytes followed by a newline.
    fn take(&mut self, n: usize) -> Result<&'a str, ServeError> {
        if self.rest.len() < n.saturating_add(1) {
            return Err(ServeError::Malformed(format!(
                "body truncated: a {n}-byte section overruns the end"
            )));
        }
        if !self.rest.is_char_boundary(n) {
            return Err(ServeError::Malformed(
                "section length splits a UTF-8 character".to_string(),
            ));
        }
        let (section, rest) = self.rest.split_at(n);
        let rest = rest.strip_prefix('\n').ok_or_else(|| {
            ServeError::Malformed("payload section is not newline-terminated".to_string())
        })?;
        self.rest = rest;
        Ok(section)
    }

    fn expect_end(&self) -> Result<(), ServeError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ServeError::Malformed(format!(
                "trailing bytes after the end marker: {:?}…",
                &self.rest[..self.rest.len().min(32)]
            )))
        }
    }
}

fn parse_count(token: Option<&str>, label: &str) -> Result<usize, ServeError> {
    token
        .ok_or_else(|| ServeError::Malformed(format!("missing {label}")))?
        .parse::<usize>()
        .map_err(|e| ServeError::Malformed(format!("bad {label}: {e}")))
}

fn parse_hash(token: Option<&str>, label: &str) -> Result<String, ServeError> {
    let token = token.ok_or_else(|| ServeError::Malformed(format!("missing {label}")))?;
    if !is_content_hash(token) {
        return Err(ServeError::Malformed(format!(
            "{label} {token:?} is not a canonical content hash"
        )));
    }
    Ok(token.to_string())
}

impl Submission {
    /// Encodes the submission into a `submit` body.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("crp-serve-submission v1\n");
        out.push_str(&format!("blobs {}\n", self.blobs.len()));
        for (hash, blob) in &self.blobs {
            out.push_str(&format!("blob {hash} bytes {}\n", blob.len()));
            out.push_str(blob);
            out.push('\n');
        }
        out.push_str(&format!("cells {}\n", self.cells.len()));
        for cell in &self.cells {
            out.push_str(&format!("cell {} jobs {}\n", cell.hash, cell.jobs.len()));
            for job in &cell.jobs {
                let refs = if job.refs.is_empty() {
                    "-".to_string()
                } else {
                    job.refs.join(",")
                };
                out.push_str(&format!(
                    "job {} refs {refs} inline {} compact {}\n",
                    job.hash,
                    job.inline.as_ref().map_or(0, String::len),
                    job.compact.as_ref().map_or(0, String::len),
                ));
                if let Some(inline) = &job.inline {
                    out.push_str(inline);
                    out.push('\n');
                }
                if let Some(compact) = &job.compact {
                    out.push_str(compact);
                    out.push('\n');
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses a `submit` body.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] describing the first offending line or
    /// section.
    pub fn decode(body: &str) -> Result<Self, ServeError> {
        let mut cursor = Cursor::new(body);
        let header = cursor.line()?;
        if header != "crp-serve-submission v1" {
            return Err(ServeError::Malformed(format!(
                "unexpected submission header {header:?}"
            )));
        }
        let mut tokens = cursor.line()?.split_ascii_whitespace();
        if tokens.next() != Some("blobs") {
            return Err(ServeError::Malformed("expected a blobs line".to_string()));
        }
        let blob_count = parse_count(tokens.next(), "blob count")?;
        let mut blobs = Vec::new();
        for _ in 0..blob_count {
            let mut tokens = cursor.line()?.split_ascii_whitespace();
            if tokens.next() != Some("blob") {
                return Err(ServeError::Malformed("expected a blob line".to_string()));
            }
            let hash = parse_hash(tokens.next(), "blob hash")?;
            if tokens.next() != Some("bytes") {
                return Err(ServeError::Malformed("expected blob bytes".to_string()));
            }
            let len = parse_count(tokens.next(), "blob length")?;
            blobs.push((hash, cursor.take(len)?.to_string()));
        }
        let mut tokens = cursor.line()?.split_ascii_whitespace();
        if tokens.next() != Some("cells") {
            return Err(ServeError::Malformed("expected a cells line".to_string()));
        }
        let cell_count = parse_count(tokens.next(), "cell count")?;
        let mut cells = Vec::new();
        for _ in 0..cell_count {
            let mut tokens = cursor.line()?.split_ascii_whitespace();
            if tokens.next() != Some("cell") {
                return Err(ServeError::Malformed("expected a cell line".to_string()));
            }
            let hash = parse_hash(tokens.next(), "cell hash")?;
            if tokens.next() != Some("jobs") {
                return Err(ServeError::Malformed("expected cell jobs".to_string()));
            }
            let job_count = parse_count(tokens.next(), "job count")?;
            let mut jobs = Vec::new();
            for _ in 0..job_count {
                let mut tokens = cursor.line()?.split_ascii_whitespace();
                if tokens.next() != Some("job") {
                    return Err(ServeError::Malformed("expected a job line".to_string()));
                }
                let job_hash = parse_hash(tokens.next(), "job hash")?;
                if tokens.next() != Some("refs") {
                    return Err(ServeError::Malformed("expected job refs".to_string()));
                }
                let refs_token = tokens
                    .next()
                    .ok_or_else(|| ServeError::Malformed("missing job refs".to_string()))?;
                let refs = if refs_token == "-" {
                    Vec::new()
                } else {
                    refs_token
                        .split(',')
                        .map(|token| parse_hash(Some(token), "job ref"))
                        .collect::<Result<Vec<String>, ServeError>>()?
                };
                if tokens.next() != Some("inline") {
                    return Err(ServeError::Malformed(
                        "expected job inline length".to_string(),
                    ));
                }
                let inline_len = parse_count(tokens.next(), "inline length")?;
                if tokens.next() != Some("compact") {
                    return Err(ServeError::Malformed(
                        "expected job compact length".to_string(),
                    ));
                }
                let compact_len = parse_count(tokens.next(), "compact length")?;
                let inline = if inline_len == 0 {
                    None
                } else {
                    Some(cursor.take(inline_len)?.to_string())
                };
                let compact = if compact_len == 0 {
                    None
                } else {
                    Some(cursor.take(compact_len)?.to_string())
                };
                if inline.is_none() && compact.is_none() {
                    return Err(ServeError::Malformed(
                        "a job needs an inline or a compact payload".to_string(),
                    ));
                }
                jobs.push(SubmissionJob {
                    hash: job_hash,
                    inline,
                    compact,
                    refs,
                });
            }
            cells.push(SubmissionCell { hash, jobs });
        }
        if cursor.line()? != "end" {
            return Err(ServeError::Malformed("missing end marker".to_string()));
        }
        cursor.expect_end()?;
        Ok(Self { blobs, cells })
    }

    /// Verifies every hash against the bytes it claims to address: job
    /// hashes against inline payloads (compact-only jobs are verified by
    /// the server after canonicalisation, before anything is written to
    /// the cache), cell hashes against job-hash lists, blob hashes
    /// against blob bytes, and every job ref against the blob table.
    /// Run by the server before anything touches the cache.
    ///
    /// # Errors
    ///
    /// [`ServeError::HashMismatch`] naming the first offender;
    /// [`ServeError::Malformed`] for a ref with no blob.
    pub fn verify_hashes(&self) -> Result<(), ServeError> {
        let mismatch = |what: String, claimed: &str, actual: String| ServeError::HashMismatch {
            what,
            claimed: claimed.to_string(),
            actual,
        };
        let mut blob_hashes = std::collections::HashSet::new();
        for (hash, blob) in &self.blobs {
            let actual = content_hash(blob.as_bytes());
            if &actual != hash {
                return Err(mismatch("blob".to_string(), hash, actual));
            }
            blob_hashes.insert(hash.as_str());
        }
        for (index, cell) in self.cells.iter().enumerate() {
            for job in &cell.jobs {
                if let Some(inline) = &job.inline {
                    let actual = content_hash(inline.as_bytes());
                    if actual != job.hash {
                        return Err(mismatch(format!("cell {index} job"), &job.hash, actual));
                    }
                }
                for reference in &job.refs {
                    if !blob_hashes.contains(reference.as_str()) {
                        return Err(ServeError::Malformed(format!(
                            "cell {index} references blob {reference} missing from the \
                             submission blob table"
                        )));
                    }
                }
            }
            let job_hashes: Vec<String> = cell.jobs.iter().map(|j| j.hash.clone()).collect();
            let actual = cell_hash(&job_hashes);
            if actual != cell.hash {
                return Err(mismatch(format!("cell {index}"), &cell.hash, actual));
            }
        }
        Ok(())
    }

    /// Total number of jobs across all cells.
    pub fn job_count(&self) -> usize {
        self.cells.iter().map(|cell| cell.jobs.len()).sum()
    }
}

/// One cell of a [`SubmissionOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// Echo of the submitted cell hash.
    pub hash: String,
    /// True when the whole cell came out of the result cache.
    pub cached: bool,
    /// The cell's merged answer blob, bit-exact.
    pub blob: String,
}

/// The outcome of a submission: per-cell merged blobs plus cache
/// statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubmissionOutcome {
    /// One outcome per submitted cell, in submission order.
    pub cells: Vec<CellOutcome>,
    /// Total jobs in the submission.
    pub jobs_total: usize,
    /// Jobs settled from the cache (including jobs of cached cells).
    pub job_hits: usize,
    /// Jobs actually dispatched to workers.
    pub computed: usize,
}

impl SubmissionOutcome {
    /// Encodes the outcome into a `result` body.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str("crp-serve-result v1\n");
        out.push_str(&format!(
            "jobs {} hits {} computed {}\n",
            self.jobs_total, self.job_hits, self.computed
        ));
        out.push_str(&format!("cells {}\n", self.cells.len()));
        for cell in &self.cells {
            out.push_str(&format!(
                "cell {} cached {} bytes {}\n",
                cell.hash,
                if cell.cached { 1 } else { 0 },
                cell.blob.len()
            ));
            out.push_str(&cell.blob);
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses a `result` body.
    ///
    /// # Errors
    ///
    /// [`ServeError::Malformed`] describing the first offending line or
    /// section.
    pub fn decode(body: &str) -> Result<Self, ServeError> {
        let mut cursor = Cursor::new(body);
        let header = cursor.line()?;
        if header != "crp-serve-result v1" {
            return Err(ServeError::Malformed(format!(
                "unexpected result header {header:?}"
            )));
        }
        let mut tokens = cursor.line()?.split_ascii_whitespace();
        let (jobs_total, job_hits, computed) = match (
            tokens.next(),
            tokens.next(),
            tokens.next(),
            tokens.next(),
            tokens.next(),
            tokens.next(),
        ) {
            (Some("jobs"), total, Some("hits"), hits, Some("computed"), computed) => (
                parse_count(total, "jobs total")?,
                parse_count(hits, "job hits")?,
                parse_count(computed, "computed count")?,
            ),
            _ => return Err(ServeError::Malformed("bad result stats line".to_string())),
        };
        let mut tokens = cursor.line()?.split_ascii_whitespace();
        if tokens.next() != Some("cells") {
            return Err(ServeError::Malformed("expected a cells line".to_string()));
        }
        let cell_count = parse_count(tokens.next(), "cell count")?;
        let mut cells = Vec::new();
        for _ in 0..cell_count {
            let mut tokens = cursor.line()?.split_ascii_whitespace();
            if tokens.next() != Some("cell") {
                return Err(ServeError::Malformed("expected a cell line".to_string()));
            }
            let hash = parse_hash(tokens.next(), "cell hash")?;
            if tokens.next() != Some("cached") {
                return Err(ServeError::Malformed("expected cached flag".to_string()));
            }
            let cached = match tokens.next() {
                Some("1") => true,
                Some("0") => false,
                other => return Err(ServeError::Malformed(format!("bad cached flag {other:?}"))),
            };
            if tokens.next() != Some("bytes") {
                return Err(ServeError::Malformed("expected cell bytes".to_string()));
            }
            let len = parse_count(tokens.next(), "cell blob length")?;
            cells.push(CellOutcome {
                hash,
                cached,
                blob: cursor.take(len)?.to_string(),
            });
        }
        if cursor.line()? != "end" {
            return Err(ServeError::Malformed("missing end marker".to_string()));
        }
        cursor.expect_end()?;
        Ok(Self {
            cells,
            jobs_total,
            job_hits,
            computed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_submission() -> Submission {
        let blob = "sampled 3fe0000000000000 3fd0000000000000".to_string();
        let blob_hash = content_hash(blob.as_bytes());
        let job = |text: &str| SubmissionJob {
            hash: content_hash(text.as_bytes()),
            inline: Some(text.to_string()),
            compact: Some(format!("ref {blob_hash}")),
            refs: vec![blob_hash.clone()],
        };
        let jobs_a = vec![
            job("spec a shard 0\nmasses inline\n"),
            job("spec a shard 1\n"),
        ];
        let jobs_b = vec![job("spec b shard 0\n")];
        let cell = |jobs: Vec<SubmissionJob>| {
            let hashes: Vec<String> = jobs.iter().map(|j| j.hash.clone()).collect();
            SubmissionCell {
                hash: cell_hash(&hashes),
                jobs,
            }
        };
        Submission {
            blobs: vec![(blob_hash, blob)],
            cells: vec![cell(jobs_a), cell(jobs_b)],
        }
    }

    #[test]
    fn service_messages_round_trip() {
        let messages = [
            ServeMessage::Hello {
                version: SERVICE_VERSION,
            },
            ServeMessage::Submit {
                id: 7,
                body: demo_submission().encode(),
            },
            ServeMessage::Progress {
                id: 7,
                completed: 3,
                total: 16,
                hits: 2,
            },
            ServeMessage::Result {
                id: 7,
                body: "crp-serve-result v1\n…".to_string(),
            },
            ServeMessage::Error {
                id: 7,
                message: "cache on fire".to_string(),
            },
            ServeMessage::ClientHello {
                tenant: "team-red".to_string(),
            },
            ServeMessage::Shutdown,
        ];
        for message in messages {
            assert_eq!(ServeMessage::decode(&message.encode()).unwrap(), message);
        }
    }

    #[test]
    fn a_worker_hello_is_reported_as_a_port_mixup() {
        let err = ServeMessage::decode(b"hello v2 capacity 1").unwrap_err();
        assert!(err.to_string().contains("worker"), "{err}");
    }

    #[test]
    fn submissions_round_trip_byte_exactly() {
        let submission = demo_submission();
        let decoded = Submission::decode(&submission.encode()).unwrap();
        assert_eq!(decoded, submission);
        assert_eq!(decoded.job_count(), 3);
        decoded.verify_hashes().unwrap();
    }

    #[test]
    fn tampered_submissions_fail_hash_verification() {
        let mut submission = demo_submission();
        submission.cells[0].jobs[0]
            .inline
            .as_mut()
            .expect("demo jobs carry inline payloads")
            .push('!');
        match submission.verify_hashes().unwrap_err() {
            ServeError::HashMismatch { what, .. } => assert!(what.contains("job"), "{what}"),
            other => panic!("expected a job hash mismatch, got {other}"),
        }

        let mut submission = demo_submission();
        submission.cells[1].hash = content_hash(b"someone else's cell");
        assert!(matches!(
            submission.verify_hashes(),
            Err(ServeError::HashMismatch { .. })
        ));

        let mut submission = demo_submission();
        submission.blobs[0].1.push('x');
        assert!(matches!(
            submission.verify_hashes(),
            Err(ServeError::HashMismatch { .. })
        ));
    }

    #[test]
    fn truncated_bodies_are_rejected() {
        let body = demo_submission().encode();
        for cut in [body.len() / 4, body.len() / 2, body.len() - 2] {
            assert!(
                Submission::decode(&body[..cut]).is_err(),
                "cut at {cut} must not parse"
            );
        }
        assert!(Submission::decode(&format!("{body}trailing")).is_err());
    }

    #[test]
    fn outcomes_round_trip() {
        let outcome = SubmissionOutcome {
            cells: vec![
                CellOutcome {
                    hash: content_hash(b"cell-a"),
                    cached: true,
                    blob: "crp-shard-accumulator v1\ntrials 3\nend\n".to_string(),
                },
                CellOutcome {
                    hash: content_hash(b"cell-b"),
                    cached: false,
                    blob: "blob with\nnewlines".to_string(),
                },
            ],
            jobs_total: 5,
            job_hits: 2,
            computed: 3,
        };
        assert_eq!(
            SubmissionOutcome::decode(&outcome.encode()).unwrap(),
            outcome
        );
    }

    #[test]
    fn cell_hash_is_order_sensitive() {
        let a = content_hash(b"a");
        let b = content_hash(b"b");
        assert_ne!(
            cell_hash(&[a.clone(), b.clone()]),
            cell_hash(&[b, a]),
            "job order is part of a cell's identity"
        );
    }
}
