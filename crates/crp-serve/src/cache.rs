//! The on-disk content-addressed result store.
//!
//! Every entry lives at `<dir>/<k0k1>/<key>.crp` (two-hex-char fan-out
//! so a big cache does not produce one enormous directory), where `key`
//! is the [`content_hash`] of the *question* — a job's canonical wire
//! encoding, or a cell's ordered job-hash list.  The stored value is the
//! bit-exact answer blob a worker (or a merge) once produced.
//!
//! Entries are self-verifying: the file carries its own key and the
//! content hash of its value, so a truncated write, a flipped bit, or a
//! hand-edited file is detected on read and surfaced as a typed
//! [`ServeError::CorruptCache`] — the caller recomputes and overwrites
//! instead of serving poison.  Writes go through a temp file + rename,
//! so a crash mid-write leaves either the old entry or none.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crp_fleet::hash::{content_hash, is_content_hash};

use crate::ServeError;

/// Magic first line of every cache entry file.
const ENTRY_HEADER: &str = "crp-cache v1";

/// A content-addressed key → blob store rooted at one directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| ServeError::Io(format!("cannot create cache dir {dir:?}: {e}")))?;
        Ok(Self { dir })
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path of `key` (two-hex-char fan-out subdirectory).
    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(&key[..2]).join(format!("{key}.crp"))
    }

    /// Looks `key` up.  `Ok(None)` for a clean miss.
    ///
    /// # Errors
    ///
    /// [`ServeError::CorruptCache`] when an entry exists but fails its
    /// self-checks (bad header, key mismatch, truncated value, value
    /// hash mismatch) — the caller should recompute and overwrite;
    /// [`ServeError::Malformed`] for a key that is not a content hash.
    pub fn get(&self, key: &str) -> Result<Option<String>, ServeError> {
        self.check_key(key)?;
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(ServeError::Io(format!("cannot read {path:?}: {e}"))),
        };
        let corrupt = |what: &str| ServeError::CorruptCache {
            key: key.to_string(),
            what: what.to_string(),
        };
        let text = std::str::from_utf8(&bytes).map_err(|_| corrupt("entry is not UTF-8"))?;
        // Header: "crp-cache v1\nkey <key>\nvalue <hash> bytes <n>\n",
        // then exactly n value bytes.
        let rest = text
            .strip_prefix(ENTRY_HEADER)
            .and_then(|r| r.strip_prefix('\n'))
            .ok_or_else(|| corrupt("bad entry header"))?;
        let (key_line, rest) = rest
            .split_once('\n')
            .ok_or_else(|| corrupt("missing key line"))?;
        let stored_key = key_line
            .strip_prefix("key ")
            .ok_or_else(|| corrupt("bad key line"))?;
        if stored_key != key {
            return Err(corrupt(&format!("entry holds key {stored_key}")));
        }
        let (value_line, value) = rest
            .split_once('\n')
            .ok_or_else(|| corrupt("missing value line"))?;
        let mut tokens = value_line.split_ascii_whitespace();
        let (value_hash, len) = match (tokens.next(), tokens.next(), tokens.next(), tokens.next()) {
            (Some("value"), Some(hash), Some("bytes"), Some(len)) => (
                hash,
                len.parse::<usize>()
                    .map_err(|_| corrupt("bad value length"))?,
            ),
            _ => return Err(corrupt("bad value line")),
        };
        if value.len() != len {
            return Err(corrupt(&format!(
                "value truncated: expected {len} bytes, found {}",
                value.len()
            )));
        }
        let actual = content_hash(value.as_bytes());
        if actual != value_hash {
            return Err(corrupt("value bytes do not match their recorded hash"));
        }
        Ok(Some(value.to_string()))
    }

    /// Stores `value` under `key`, atomically (temp file + rename), and
    /// overwriting any previous entry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for filesystem failures;
    /// [`ServeError::Malformed`] for a key that is not a content hash.
    pub fn put(&self, key: &str, value: &str) -> Result<(), ServeError> {
        self.check_key(key)?;
        let path = self.entry_path(key);
        let parent = path.parent().expect("entry paths have a fan-out parent");
        fs::create_dir_all(parent)
            .map_err(|e| ServeError::Io(format!("cannot create {parent:?}: {e}")))?;
        let mut entry = String::with_capacity(value.len() + 128);
        entry.push_str(ENTRY_HEADER);
        entry.push('\n');
        entry.push_str(&format!("key {key}\n"));
        entry.push_str(&format!(
            "value {} bytes {}\n",
            content_hash(value.as_bytes()),
            value.len()
        ));
        entry.push_str(value);
        // Unique temp name per writer (pid + a process-wide counter) so
        // concurrent puts of the same key — different threads, different
        // processes — cannot interleave inside one temp file; whichever
        // rename lands last wins, and both wrote identical bytes anyway
        // (the key is the content address of the question, the value its
        // deterministic answer).
        static WRITER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let writer_id = WRITER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = parent.join(format!(".{key}.{}.{writer_id}.tmp", std::process::id()));
        {
            let mut file = fs::File::create(&tmp)
                .map_err(|e| ServeError::Io(format!("cannot create {tmp:?}: {e}")))?;
            file.write_all(entry.as_bytes())
                .map_err(|e| ServeError::Io(format!("cannot write {tmp:?}: {e}")))?;
            file.sync_all().ok();
        }
        fs::rename(&tmp, &path).map_err(|e| {
            let _ = fs::remove_file(&tmp);
            ServeError::Io(format!("cannot move {tmp:?} into place: {e}"))
        })
    }

    /// Number of entries currently stored (walks the fan-out dirs; used
    /// by diagnostics and tests, not hot paths).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] for filesystem failures.
    pub fn len(&self) -> Result<usize, ServeError> {
        let mut count = 0;
        for shard in fs::read_dir(&self.dir).map_err(ServeError::from)? {
            let shard = shard.map_err(ServeError::from)?;
            if !shard.file_type().map_err(ServeError::from)?.is_dir() {
                continue;
            }
            for entry in fs::read_dir(shard.path()).map_err(ServeError::from)? {
                let entry = entry.map_err(ServeError::from)?;
                if entry.path().extension().is_some_and(|e| e == "crp") {
                    count += 1;
                }
            }
        }
        Ok(count)
    }

    /// True when the cache holds no entries.
    ///
    /// # Errors
    ///
    /// As [`ResultCache::len`].
    pub fn is_empty(&self) -> Result<bool, ServeError> {
        Ok(self.len()? == 0)
    }

    fn check_key(&self, key: &str) -> Result<(), ServeError> {
        if !is_content_hash(key) {
            return Err(ServeError::Malformed(format!(
                "cache key {key:?} is not a canonical content hash"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_cache(tag: &str) -> ResultCache {
        let dir = std::env::temp_dir().join(format!("crp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(dir).unwrap()
    }

    #[test]
    fn round_trips_and_misses() {
        let cache = scratch_cache("roundtrip");
        let key = content_hash(b"question");
        assert_eq!(cache.get(&key).unwrap(), None, "clean miss");
        cache.put(&key, "the answer\nwith lines\n").unwrap();
        assert_eq!(
            cache.get(&key).unwrap().as_deref(),
            Some("the answer\nwith lines\n")
        );
        assert_eq!(cache.len().unwrap(), 1);
        // Overwrite is allowed and atomic.
        cache.put(&key, "a different answer").unwrap();
        assert_eq!(
            cache.get(&key).unwrap().as_deref(),
            Some("a different answer")
        );
        assert_eq!(cache.len().unwrap(), 1);
    }

    #[test]
    fn corrupt_and_truncated_entries_are_typed_errors() {
        let cache = scratch_cache("corrupt");
        let key = content_hash(b"q");
        cache.put(&key, "precious bits").unwrap();
        let path = cache.dir().join(&key[..2]).join(format!("{key}.crp"));

        // Truncation.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 4]).unwrap();
        assert!(matches!(
            cache.get(&key),
            Err(ServeError::CorruptCache { .. })
        ));

        // Bit flip in the value.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x20;
        fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            cache.get(&key),
            Err(ServeError::CorruptCache { .. })
        ));

        // Wrong header entirely.
        fs::write(&path, b"not a cache entry").unwrap();
        assert!(matches!(
            cache.get(&key),
            Err(ServeError::CorruptCache { .. })
        ));

        // Recompute-and-overwrite heals it.
        cache.put(&key, "precious bits").unwrap();
        assert_eq!(cache.get(&key).unwrap().as_deref(), Some("precious bits"));
    }

    #[test]
    fn non_hash_keys_are_rejected() {
        let cache = scratch_cache("badkey");
        assert!(matches!(
            cache.put("not-a-hash", "x"),
            Err(ServeError::Malformed(_))
        ));
        assert!(matches!(
            cache.get("../escape"),
            Err(ServeError::Malformed(_))
        ));
    }
}
