//! A simulated learned predictor.
//!
//! The paper motivates predictions as the output of "machine learning
//! models able to observe the behavior of a given environment over time".
//! The relevant property of such a model, for every theorem in the paper,
//! is the distribution it outputs and that distribution's divergence from
//! the truth.  [`LearnedPredictor`] is the simplest model with exactly that
//! behaviour: a Laplace-smoothed histogram over the geometric size ranges,
//! fitted from observed samples of the true process.  With few samples the
//! divergence is large; as the sample count grows the predicted
//! distribution converges to the truth and the divergence goes to zero —
//! giving the experiment harness a realistic "prediction quality" axis.

use crp_info::{range_index_for_size, CondensedDistribution, SizeDistribution};
use rand::Rng;

use crate::error::PredictError;

/// A histogram-over-ranges predictor with Laplace smoothing.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedPredictor {
    max_size: usize,
    /// Per-range observation counts (index `i` is range `i + 1`).
    counts: Vec<u64>,
    /// Laplace smoothing pseudo-count added to every range.
    smoothing: f64,
}

impl LearnedPredictor {
    /// Creates an untrained predictor for networks of maximum size
    /// `max_size`, with the given Laplace smoothing pseudo-count.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if `max_size < 2` or the
    /// smoothing constant is not positive and finite (a strictly positive
    /// pseudo-count guarantees the predicted distribution never rules out a
    /// range, keeping the KL divergence finite).
    pub fn new(max_size: usize, smoothing: f64) -> Result<Self, PredictError> {
        if max_size < 2 {
            return Err(PredictError::InvalidParameter {
                what: format!("predictor requires max_size >= 2, got {max_size}"),
            });
        }
        if smoothing <= 0.0 || !smoothing.is_finite() {
            return Err(PredictError::InvalidParameter {
                what: format!("smoothing must be positive and finite, got {smoothing}"),
            });
        }
        let num_ranges = range_index_for_size(max_size);
        Ok(Self {
            max_size,
            counts: vec![0; num_ranges],
            smoothing,
        })
    }

    /// The maximum network size this predictor is defined over.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// Total number of observed samples.
    pub fn observations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Records one observed network size.
    ///
    /// Sizes are clamped into `2..=max_size` before being assigned to their
    /// geometric range, so a predictor never panics on out-of-model
    /// observations (it just attributes them to the boundary range).
    pub fn observe(&mut self, size: usize) {
        let clamped = size.clamp(2, self.max_size);
        let range = range_index_for_size(clamped).min(self.counts.len());
        self.counts[range - 1] += 1;
    }

    /// Trains the predictor on `samples` draws from the true distribution.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        truth: &SizeDistribution,
        samples: usize,
        rng: &mut R,
    ) {
        for _ in 0..samples {
            let size = truth.sample(rng);
            self.observe(size);
        }
    }

    /// The predicted condensed distribution `c(Y)` (Laplace-smoothed
    /// relative frequencies over ranges).
    pub fn predicted_condensed(&self) -> CondensedDistribution {
        let total = self.observations() as f64 + self.smoothing * self.counts.len() as f64;
        let masses: Vec<f64> = self
            .counts
            .iter()
            .map(|&c| (c as f64 + self.smoothing) / total)
            .collect();
        CondensedDistribution::from_range_masses(masses, self.max_size)
            .expect("smoothed histogram is always a valid distribution")
    }

    /// The predicted *size* distribution `Y`: the condensed prediction with
    /// each range's mass spread uniformly over the sizes in that range.
    ///
    /// This is the object handed to protocols that take a full
    /// [`SizeDistribution`] as input.
    pub fn predicted_sizes(&self) -> SizeDistribution {
        let condensed = self.predicted_condensed();
        let mut weights = vec![0.0; self.max_size];
        for range in 1..=condensed.num_ranges() {
            let mass = condensed.probability_of_range(range);
            if mass <= 0.0 {
                continue;
            }
            let (lo, hi) = crp_info::range_interval(range);
            let hi = hi.min(self.max_size);
            let lo = lo.min(hi);
            let count = hi - lo + 1;
            for size in lo..=hi {
                weights[size - 1] += mass / count as f64;
            }
        }
        SizeDistribution::from_weights(weights).expect("spread histogram has positive total mass")
    }

    /// Divergence `D_KL(c(truth) ‖ c(prediction))` of the current model
    /// from a reference truth.
    pub fn divergence_from(&self, truth: &SizeDistribution) -> f64 {
        CondensedDistribution::from_sizes(truth).kl_divergence(&self.predicted_condensed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn untrained_predictor_is_uniform_over_ranges() {
        let p = LearnedPredictor::new(1024, 1.0).unwrap();
        let condensed = p.predicted_condensed();
        let expected = 1.0 / condensed.num_ranges() as f64;
        for range in 1..=condensed.num_ranges() {
            assert!((condensed.probability_of_range(range) - expected).abs() < 1e-12);
        }
        assert_eq!(p.observations(), 0);
    }

    #[test]
    fn training_reduces_divergence() {
        let truth = SizeDistribution::bimodal(2048, 40, 900, 0.8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut few = LearnedPredictor::new(2048, 1.0).unwrap();
        few.train(&truth, 5, &mut rng);
        let mut many = LearnedPredictor::new(2048, 1.0).unwrap();
        many.train(&truth, 5_000, &mut rng);
        let d_few = few.divergence_from(&truth);
        let d_many = many.divergence_from(&truth);
        assert!(
            d_many < d_few,
            "more training should reduce divergence: few={d_few}, many={d_many}"
        );
        assert!(d_many < 0.2, "well-trained divergence {d_many} too large");
    }

    #[test]
    fn divergence_is_always_finite_thanks_to_smoothing() {
        let truth = SizeDistribution::uniform_ranges(4096).unwrap();
        let p = LearnedPredictor::new(4096, 0.5).unwrap();
        assert!(p.divergence_from(&truth).is_finite());
    }

    #[test]
    fn observe_clamps_out_of_range_sizes() {
        let mut p = LearnedPredictor::new(64, 1.0).unwrap();
        p.observe(0);
        p.observe(1);
        p.observe(1_000_000);
        assert_eq!(p.observations(), 3);
    }

    #[test]
    fn predicted_sizes_is_a_valid_distribution() {
        let truth = SizeDistribution::geometric(512, 0.15).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut p = LearnedPredictor::new(512, 1.0).unwrap();
        p.train(&truth, 300, &mut rng);
        let sizes = p.predicted_sizes();
        let total: f64 = sizes.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(sizes.max_size(), 512);
    }

    #[test]
    fn constructor_validates_parameters() {
        assert!(LearnedPredictor::new(1, 1.0).is_err());
        assert!(LearnedPredictor::new(64, 0.0).is_err());
        assert!(LearnedPredictor::new(64, f64::NAN).is_err());
    }

    #[test]
    fn accessor_reports_max_size() {
        let p = LearnedPredictor::new(256, 1.0).unwrap();
        assert_eq!(p.max_size(), 256);
    }
}
