//! Named ground-truth scenarios used throughout the experiments.
//!
//! Each [`Scenario`] wraps a [`SizeDistribution`] together with a stable
//! name, so that experiment tables, benches and examples can refer to the
//! same workloads consistently.

use crp_info::{CondensedDistribution, SizeDistribution};

use crate::error::PredictError;

/// A named ground-truth network-size process, optionally paired with a
/// *fixed* advice distribution that differs from the truth.
///
/// For ordinary scenarios the advice *is* the truth (the accurate-prediction
/// setting of the paper's upper bounds).  Drift scenarios model a predictor
/// whose advice was fit to an earlier truth: trials sample from the current
/// (shifted) truth while protocols keep consulting the stale advice.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    distribution: SizeDistribution,
    advice: Option<SizeDistribution>,
}

impl Scenario {
    /// Wraps a distribution with a display name; the advice equals the
    /// truth.
    pub fn new(name: impl Into<String>, distribution: SizeDistribution) -> Self {
        Self {
            name: name.into(),
            distribution,
            advice: None,
        }
    }

    /// Wraps a truth distribution together with a fixed advice distribution
    /// that prediction-consuming protocols should use instead of the truth.
    pub fn with_advice(
        name: impl Into<String>,
        distribution: SizeDistribution,
        advice: SizeDistribution,
    ) -> Self {
        Self {
            name: name.into(),
            distribution,
            advice: Some(advice),
        }
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ground-truth size distribution `X`.
    pub fn distribution(&self) -> &SizeDistribution {
        &self.distribution
    }

    /// The advice distribution `Y` protocols should build predictions from
    /// (equal to the truth unless the scenario models prediction drift).
    pub fn advice(&self) -> &SizeDistribution {
        self.advice.as_ref().unwrap_or(&self.distribution)
    }

    /// Whether the advice differs from the truth.
    pub fn has_drifted_advice(&self) -> bool {
        self.advice.is_some()
    }

    /// The condensed version `c(X)` of the ground truth.
    pub fn condensed(&self) -> CondensedDistribution {
        CondensedDistribution::from_sizes(&self.distribution)
    }

    /// The condensed version `c(Y)` of the advice distribution.
    pub fn advice_condensed(&self) -> CondensedDistribution {
        CondensedDistribution::from_sizes(self.advice())
    }

    /// Condensed entropy `H(c(X))` in bits.
    pub fn condensed_entropy(&self) -> f64 {
        self.condensed().entropy()
    }

    /// Divergence `D_KL(c(X) ‖ c(Y))` between truth and advice, in bits
    /// (zero when the advice is accurate).
    pub fn advice_divergence(&self) -> f64 {
        self.condensed().kl_divergence(&self.advice_condensed())
    }
}

/// The standard library of scenarios used by the experiment harness.
///
/// Every scenario is defined for a maximum network size `n`, so the same
/// set can be regenerated at different scales for the `n`-sweeps.  Beyond
/// the built-in families, callers can [`register`] extension scenarios —
/// the fuzzing layer registers shrunk corpus reproducers this way, so
/// `--scenarios` can address them by name like any built-in.
///
/// [`register`]: ScenarioLibrary::register
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioLibrary {
    max_size: usize,
    extensions: Vec<Scenario>,
}

impl ScenarioLibrary {
    /// Creates a library for networks of maximum size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if `n < 8` (the smallest
    /// size at which all scenario families are distinguishable).
    pub fn new(max_size: usize) -> Result<Self, PredictError> {
        if max_size < 8 {
            return Err(PredictError::InvalidParameter {
                what: format!("scenario library requires n >= 8, got {max_size}"),
            });
        }
        Ok(Self {
            max_size,
            extensions: Vec::new(),
        })
    }

    /// Registers an extension scenario addressable through
    /// [`ScenarioLibrary::by_name`].
    ///
    /// Re-registering an extension with the same name replaces it (a
    /// re-shrunk reproducer supersedes the old one).
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if the name is empty or
    /// collides with a built-in scenario name.
    pub fn register(&mut self, scenario: Scenario) -> Result<(), PredictError> {
        if scenario.name().is_empty() {
            return Err(PredictError::InvalidParameter {
                what: "registered scenarios need a non-empty name".to_string(),
            });
        }
        if Self::names().contains(&scenario.name()) {
            return Err(PredictError::InvalidParameter {
                what: format!(
                    "scenario name {:?} collides with a built-in scenario",
                    scenario.name()
                ),
            });
        }
        match self
            .extensions
            .iter_mut()
            .find(|existing| existing.name() == scenario.name())
        {
            Some(existing) => *existing = scenario,
            None => self.extensions.push(scenario),
        }
        Ok(())
    }

    /// The registered extension scenarios, in registration order.
    pub fn registered(&self) -> &[Scenario] {
        &self.extensions
    }

    /// Every name [`ScenarioLibrary::by_name`] currently accepts: the
    /// built-ins followed by registered extensions.
    pub fn available_names(&self) -> Vec<String> {
        Self::names()
            .iter()
            .map(|&name| name.to_string())
            .chain(self.extensions.iter().map(|s| s.name().to_string()))
            .collect()
    }

    /// The maximum network size the scenarios are defined over.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// A point mass at roughly `n / 16`: the "perfect prediction" extreme
    /// (condensed entropy 0).
    pub fn point_mass(&self) -> Scenario {
        let size = (self.max_size / 16).max(2);
        Scenario::new(
            "point-mass",
            SizeDistribution::point_mass(self.max_size, size).expect("library sizes are validated"),
        )
    }

    /// Uniform over the geometric ranges: the maximum-entropy extreme where
    /// predictions are useless and the worst-case bounds apply.
    pub fn uniform_ranges(&self) -> Scenario {
        Scenario::new(
            "uniform-ranges",
            SizeDistribution::uniform_ranges(self.max_size).expect("library sizes are validated"),
        )
    }

    /// Uniform over all sizes `2..=n` (mass concentrates in the top range).
    pub fn uniform_sizes(&self) -> Scenario {
        Scenario::new(
            "uniform-sizes",
            SizeDistribution::uniform_sizes(self.max_size).expect("library sizes are validated"),
        )
    }

    /// A geometric distribution: the network is usually tiny.
    pub fn geometric(&self) -> Scenario {
        Scenario::new(
            "geometric",
            SizeDistribution::geometric(self.max_size, 0.2).expect("library sizes are validated"),
        )
    }

    /// A Zipf distribution with exponent 1.2.
    pub fn zipf(&self) -> Scenario {
        Scenario::new(
            "zipf",
            SizeDistribution::zipf(self.max_size, 1.2).expect("library sizes are validated"),
        )
    }

    /// A bimodal distribution: usually around `n/32` devices, occasionally a
    /// burst around `n/2`.
    pub fn bimodal(&self) -> Scenario {
        Scenario::new(
            "bimodal",
            SizeDistribution::bimodal(
                self.max_size,
                (self.max_size / 32).max(2),
                (self.max_size / 2).max(2),
                0.85,
            )
            .expect("library sizes are validated"),
        )
    }

    /// A bursty-arrival workload: a mixture of point masses at three
    /// discrete activity levels (idle cluster, regular load, synchronized
    /// burst), with nothing in between.
    pub fn bursty(&self) -> Scenario {
        let n = self.max_size;
        Scenario::new(
            "bursty",
            SizeDistribution::mixture_of_point_masses(
                n,
                &[
                    ((n / 64).max(2), 0.6),
                    ((n / 16).max(2), 0.3),
                    ((n / 4).max(2), 0.1),
                ],
            )
            .expect("library sizes are validated"),
        )
    }

    /// The advice distribution the drift scenarios were "trained" on: the
    /// bimodal workload smoothed with 5% uniform-over-ranges mass, the way
    /// a real histogram predictor smooths its estimate.  The smoothing
    /// keeps every range in the advice's support, so the drift scenarios'
    /// divergence `D_KL(c(X) ‖ c(Y))` is large but *finite* — directly
    /// comparable against the paper's `O(2^{2H + 2D})` / `O((H + D)²)`
    /// bounds instead of degenerating to `inf`.
    fn drift_advice(&self) -> SizeDistribution {
        let bimodal = self.bimodal().distribution().clone();
        let uniform =
            SizeDistribution::uniform_ranges(self.max_size).expect("library sizes are validated");
        bimodal
            .mix(&uniform, 0.95)
            .expect("library distributions share a support")
    }

    /// Correlated-prediction drift: the advice was fit to the bimodal
    /// workload, but the truth has since shifted one geometric range up
    /// (the network doubled).  The advice stays fixed while every trial
    /// samples from the shifted truth.
    pub fn correlated_drift(&self) -> Scenario {
        let advice = self.drift_advice();
        let truth = crate::noise::support_shift(&advice, 1)
            .expect("library universes have more than one range");
        Scenario::with_advice("correlated-drift", truth, advice)
    }

    /// Adversarial drift: truth mass moves onto the sizes the advice
    /// distribution covers *worst* (its least likely sizes), modelling an
    /// adversary steering arrivals where the predictor is most wrong.
    pub fn adversarial_drift(&self) -> Scenario {
        let advice = self.drift_advice();
        let truth = crate::noise::mass_shift(&advice, 0.5).expect("0.5 is a valid shift fraction");
        Scenario::with_advice("adversarial-drift", truth, advice)
    }

    /// Every accurate-advice scenario in the library, in a stable order.
    pub fn all(&self) -> Vec<Scenario> {
        vec![
            self.point_mass(),
            self.geometric(),
            self.zipf(),
            self.bimodal(),
            self.uniform_sizes(),
            self.uniform_ranges(),
        ]
    }

    /// Every scenario including the drifted-advice workloads ([`all`]
    /// plus bursty arrivals and the two drift generators).
    ///
    /// [`all`]: ScenarioLibrary::all
    pub fn extended(&self) -> Vec<Scenario> {
        let mut scenarios = self.all();
        scenarios.push(self.bursty());
        scenarios.push(self.correlated_drift());
        scenarios.push(self.adversarial_drift());
        scenarios
    }

    /// The names [`ScenarioLibrary::by_name`] accepts, in a stable order.
    pub fn names() -> &'static [&'static str] {
        &[
            "point-mass",
            "geometric",
            "zipf",
            "bimodal",
            "uniform-sizes",
            "uniform-ranges",
            "bursty",
            "correlated-drift",
            "adversarial-drift",
        ]
    }

    /// Looks a scenario up by its stable name: first the built-ins, then
    /// any [registered](ScenarioLibrary::register) extensions.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] for an unknown name,
    /// listing every valid (built-in and registered) name.
    pub fn by_name(&self, name: &str) -> Result<Scenario, PredictError> {
        match name {
            "point-mass" => Ok(self.point_mass()),
            "geometric" => Ok(self.geometric()),
            "zipf" => Ok(self.zipf()),
            "bimodal" => Ok(self.bimodal()),
            "uniform-sizes" => Ok(self.uniform_sizes()),
            "uniform-ranges" => Ok(self.uniform_ranges()),
            "bursty" => Ok(self.bursty()),
            "correlated-drift" => Ok(self.correlated_drift()),
            "adversarial-drift" => Ok(self.adversarial_drift()),
            other => self
                .extensions
                .iter()
                .find(|scenario| scenario.name() == other)
                .cloned()
                .ok_or_else(|| PredictError::InvalidParameter {
                    what: format!(
                        "unknown scenario {other:?}; expected one of: {}",
                        self.available_names().join(", ")
                    ),
                }),
        }
    }

    /// A family of scenarios interpolating condensed entropy from ~0 to the
    /// maximum, by mixing a point mass with the uniform-over-ranges
    /// distribution at `steps` evenly spaced mixture weights.
    ///
    /// Used by the `F-ENTROPY` experiment.
    pub fn entropy_ladder(&self, steps: usize) -> Vec<Scenario> {
        let point = self.point_mass();
        let uniform = self.uniform_ranges();
        (0..steps)
            .map(|i| {
                let lambda = if steps <= 1 {
                    0.0
                } else {
                    1.0 - i as f64 / (steps - 1) as f64
                };
                let mixed = point
                    .distribution()
                    .mix(uniform.distribution(), lambda)
                    .expect("library distributions share a support");
                Scenario::new(format!("mix-{i}"), mixed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_rejects_tiny_universes() {
        assert!(ScenarioLibrary::new(4).is_err());
        assert!(ScenarioLibrary::new(8).is_ok());
    }

    #[test]
    fn all_scenarios_are_valid_distributions() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        for scenario in lib.all() {
            let total: f64 = scenario.distribution().masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", scenario.name());
            assert!(!scenario.name().is_empty());
        }
    }

    #[test]
    fn point_mass_has_zero_condensed_entropy() {
        let lib = ScenarioLibrary::new(4096).unwrap();
        assert_eq!(lib.point_mass().condensed_entropy(), 0.0);
    }

    #[test]
    fn uniform_ranges_has_maximum_condensed_entropy() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        let scenario = lib.uniform_ranges();
        let condensed = scenario.condensed();
        assert!((condensed.entropy() - condensed.max_entropy()).abs() < 1e-9);
    }

    #[test]
    fn entropy_ladder_is_monotone_nondecreasing() {
        let lib = ScenarioLibrary::new(2048).unwrap();
        let ladder = lib.entropy_ladder(8);
        assert_eq!(ladder.len(), 8);
        for pair in ladder.windows(2) {
            assert!(
                pair[0].condensed_entropy() <= pair[1].condensed_entropy() + 1e-9,
                "ladder not monotone: {} then {}",
                pair[0].condensed_entropy(),
                pair[1].condensed_entropy()
            );
        }
        assert!(ladder[0].condensed_entropy() < 0.1);
        assert!(ladder[7].condensed_entropy() > 2.0);
    }

    #[test]
    fn extended_library_adds_drift_scenarios() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        let extended = lib.extended();
        assert_eq!(extended.len(), lib.all().len() + 3);
        for scenario in &extended {
            let total: f64 = scenario.distribution().masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", scenario.name());
        }
    }

    #[test]
    fn drift_scenarios_keep_advice_fixed_while_truth_moves() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        for scenario in [lib.correlated_drift(), lib.adversarial_drift()] {
            assert!(scenario.has_drifted_advice(), "{}", scenario.name());
            assert_ne!(scenario.distribution(), scenario.advice());
            let divergence = scenario.advice_divergence();
            assert!(
                divergence > 0.1,
                "{} should diverge, got {divergence}",
                scenario.name()
            );
            // The smoothed advice keeps every range in its support, so the
            // divergence is meaningful (finite), not degenerate.
            assert!(
                divergence.is_finite(),
                "{} divergence must be finite, got {divergence}",
                scenario.name()
            );
        }
        // Accurate scenarios report zero divergence and advice == truth.
        let bimodal = lib.bimodal();
        assert!(!bimodal.has_drifted_advice());
        assert_eq!(bimodal.advice(), bimodal.distribution());
        assert!(bimodal.advice_divergence().abs() < 1e-12);
    }

    #[test]
    fn bursty_is_a_three_level_mixture() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        let bursty = lib.bursty();
        assert_eq!(bursty.distribution().support(), vec![16, 64, 256]);
        assert!((bursty.distribution().probability_of(16) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn by_name_round_trips_every_listed_scenario() {
        let lib = ScenarioLibrary::new(512).unwrap();
        for &name in ScenarioLibrary::names() {
            let scenario = lib.by_name(name).unwrap();
            assert_eq!(scenario.name(), name);
        }
        assert!(lib.by_name("no-such-scenario").is_err());
    }

    #[test]
    fn register_extends_the_name_space_without_shadowing_builtins() {
        let mut lib = ScenarioLibrary::new(256).unwrap();
        let repro = Scenario::new(
            "fuzz-deadbeef",
            SizeDistribution::point_mass(256, 32).unwrap(),
        );
        lib.register(repro.clone()).unwrap();
        assert_eq!(lib.by_name("fuzz-deadbeef").unwrap(), repro);
        assert_eq!(lib.registered(), std::slice::from_ref(&repro));
        // Unknown-name errors list the extension alongside the built-ins.
        let err = lib.by_name("missing").unwrap_err();
        assert!(err.to_string().contains("fuzz-deadbeef"), "{err}");
        assert!(err.to_string().contains("point-mass"), "{err}");
        // Same-name re-registration replaces; built-in collisions are
        // rejected; empty names are rejected.
        let replacement = Scenario::new(
            "fuzz-deadbeef",
            SizeDistribution::point_mass(256, 64).unwrap(),
        );
        lib.register(replacement.clone()).unwrap();
        assert_eq!(lib.by_name("fuzz-deadbeef").unwrap(), replacement);
        assert_eq!(lib.registered().len(), 1);
        assert!(lib
            .register(Scenario::new(
                "bimodal",
                SizeDistribution::point_mass(256, 2).unwrap()
            ))
            .is_err());
        assert!(lib
            .register(Scenario::new(
                "",
                SizeDistribution::point_mass(256, 2).unwrap()
            ))
            .is_err());
    }

    #[test]
    fn scenario_exposes_condensed_view() {
        let lib = ScenarioLibrary::new(512).unwrap();
        let s = lib.bimodal();
        assert_eq!(s.condensed().max_size(), 512);
        assert!(s.condensed_entropy() > 0.0);
    }
}
