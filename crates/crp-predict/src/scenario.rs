//! Named ground-truth scenarios used throughout the experiments.
//!
//! Each [`Scenario`] wraps a [`SizeDistribution`] together with a stable
//! name, so that experiment tables, benches and examples can refer to the
//! same workloads consistently.

use crp_info::{CondensedDistribution, SizeDistribution};

use crate::error::PredictError;

/// A named ground-truth network-size process.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    distribution: SizeDistribution,
}

impl Scenario {
    /// Wraps a distribution with a display name.
    pub fn new(name: impl Into<String>, distribution: SizeDistribution) -> Self {
        Self {
            name: name.into(),
            distribution,
        }
    }

    /// The scenario's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ground-truth size distribution `X`.
    pub fn distribution(&self) -> &SizeDistribution {
        &self.distribution
    }

    /// The condensed version `c(X)` of the ground truth.
    pub fn condensed(&self) -> CondensedDistribution {
        CondensedDistribution::from_sizes(&self.distribution)
    }

    /// Condensed entropy `H(c(X))` in bits.
    pub fn condensed_entropy(&self) -> f64 {
        self.condensed().entropy()
    }
}

/// The standard library of scenarios used by the experiment harness.
///
/// Every scenario is defined for a maximum network size `n`, so the same
/// set can be regenerated at different scales for the `n`-sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioLibrary {
    max_size: usize,
}

impl ScenarioLibrary {
    /// Creates a library for networks of maximum size `n`.
    ///
    /// # Errors
    ///
    /// Returns [`PredictError::InvalidParameter`] if `n < 8` (the smallest
    /// size at which all scenario families are distinguishable).
    pub fn new(max_size: usize) -> Result<Self, PredictError> {
        if max_size < 8 {
            return Err(PredictError::InvalidParameter {
                what: format!("scenario library requires n >= 8, got {max_size}"),
            });
        }
        Ok(Self { max_size })
    }

    /// The maximum network size the scenarios are defined over.
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// A point mass at roughly `n / 16`: the "perfect prediction" extreme
    /// (condensed entropy 0).
    pub fn point_mass(&self) -> Scenario {
        let size = (self.max_size / 16).max(2);
        Scenario::new(
            "point-mass",
            SizeDistribution::point_mass(self.max_size, size).expect("library sizes are validated"),
        )
    }

    /// Uniform over the geometric ranges: the maximum-entropy extreme where
    /// predictions are useless and the worst-case bounds apply.
    pub fn uniform_ranges(&self) -> Scenario {
        Scenario::new(
            "uniform-ranges",
            SizeDistribution::uniform_ranges(self.max_size).expect("library sizes are validated"),
        )
    }

    /// Uniform over all sizes `2..=n` (mass concentrates in the top range).
    pub fn uniform_sizes(&self) -> Scenario {
        Scenario::new(
            "uniform-sizes",
            SizeDistribution::uniform_sizes(self.max_size).expect("library sizes are validated"),
        )
    }

    /// A geometric distribution: the network is usually tiny.
    pub fn geometric(&self) -> Scenario {
        Scenario::new(
            "geometric",
            SizeDistribution::geometric(self.max_size, 0.2).expect("library sizes are validated"),
        )
    }

    /// A Zipf distribution with exponent 1.2.
    pub fn zipf(&self) -> Scenario {
        Scenario::new(
            "zipf",
            SizeDistribution::zipf(self.max_size, 1.2).expect("library sizes are validated"),
        )
    }

    /// A bimodal distribution: usually around `n/32` devices, occasionally a
    /// burst around `n/2`.
    pub fn bimodal(&self) -> Scenario {
        Scenario::new(
            "bimodal",
            SizeDistribution::bimodal(
                self.max_size,
                (self.max_size / 32).max(2),
                (self.max_size / 2).max(2),
                0.85,
            )
            .expect("library sizes are validated"),
        )
    }

    /// Every scenario in the library, in a stable order.
    pub fn all(&self) -> Vec<Scenario> {
        vec![
            self.point_mass(),
            self.geometric(),
            self.zipf(),
            self.bimodal(),
            self.uniform_sizes(),
            self.uniform_ranges(),
        ]
    }

    /// A family of scenarios interpolating condensed entropy from ~0 to the
    /// maximum, by mixing a point mass with the uniform-over-ranges
    /// distribution at `steps` evenly spaced mixture weights.
    ///
    /// Used by the `F-ENTROPY` experiment.
    pub fn entropy_ladder(&self, steps: usize) -> Vec<Scenario> {
        let point = self.point_mass();
        let uniform = self.uniform_ranges();
        (0..steps)
            .map(|i| {
                let lambda = if steps <= 1 {
                    0.0
                } else {
                    1.0 - i as f64 / (steps - 1) as f64
                };
                let mixed = point
                    .distribution()
                    .mix(uniform.distribution(), lambda)
                    .expect("library distributions share a support");
                Scenario::new(format!("mix-{i}"), mixed)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_rejects_tiny_universes() {
        assert!(ScenarioLibrary::new(4).is_err());
        assert!(ScenarioLibrary::new(8).is_ok());
    }

    #[test]
    fn all_scenarios_are_valid_distributions() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        for scenario in lib.all() {
            let total: f64 = scenario.distribution().masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", scenario.name());
            assert!(!scenario.name().is_empty());
        }
    }

    #[test]
    fn point_mass_has_zero_condensed_entropy() {
        let lib = ScenarioLibrary::new(4096).unwrap();
        assert_eq!(lib.point_mass().condensed_entropy(), 0.0);
    }

    #[test]
    fn uniform_ranges_has_maximum_condensed_entropy() {
        let lib = ScenarioLibrary::new(1024).unwrap();
        let scenario = lib.uniform_ranges();
        let condensed = scenario.condensed();
        assert!((condensed.entropy() - condensed.max_entropy()).abs() < 1e-9);
    }

    #[test]
    fn entropy_ladder_is_monotone_nondecreasing() {
        let lib = ScenarioLibrary::new(2048).unwrap();
        let ladder = lib.entropy_ladder(8);
        assert_eq!(ladder.len(), 8);
        for pair in ladder.windows(2) {
            assert!(
                pair[0].condensed_entropy() <= pair[1].condensed_entropy() + 1e-9,
                "ladder not monotone: {} then {}",
                pair[0].condensed_entropy(),
                pair[1].condensed_entropy()
            );
        }
        assert!(ladder[0].condensed_entropy() < 0.1);
        assert!(ladder[7].condensed_entropy() > 2.0);
    }

    #[test]
    fn scenario_exposes_condensed_view() {
        let lib = ScenarioLibrary::new(512).unwrap();
        let s = lib.bimodal();
        assert_eq!(s.condensed().max_size(), 512);
        assert!(s.condensed_entropy() > 0.0);
    }
}
