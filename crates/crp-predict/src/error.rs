//! Error type for the prediction substrate.

use std::error::Error;
use std::fmt;

use crp_info::InfoError;

/// Errors produced while building predictions or advice.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictError {
    /// The underlying distribution construction failed.
    Distribution(InfoError),
    /// A noise or training parameter was invalid.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        what: String,
    },
    /// An advice oracle was asked for more bits than it can meaningfully
    /// produce, or for a participant set it cannot encode.
    AdviceUnavailable {
        /// Human-readable description of the problem.
        what: String,
    },
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Distribution(err) => write!(f, "distribution error: {err}"),
            PredictError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            PredictError::AdviceUnavailable { what } => write!(f, "advice unavailable: {what}"),
        }
    }
}

impl Error for PredictError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PredictError::Distribution(err) => Some(err),
            _ => None,
        }
    }
}

impl From<InfoError> for PredictError {
    fn from(err: InfoError) -> Self {
        PredictError::Distribution(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = PredictError::from(InfoError::EmptySupport);
        assert!(err.to_string().contains("distribution"));
        assert!(err.source().is_some());
        let err = PredictError::InvalidParameter {
            what: "negative factor".into(),
        };
        assert!(err.to_string().contains("negative factor"));
        assert!(err.source().is_none());
    }
}
