//! Perfect-advice oracles (paper §3).
//!
//! The perfect-advice model augments a contention-resolution algorithm `A`
//! with an advice function `f_A : P(V) → {0,1}^b` that sees the exact
//! participant set of the current execution and returns the same `b` bits
//! of advice to every participant.  The question the paper answers is: how
//! much can the best possible `b`-bit advice speed things up?
//!
//! Two oracle families cover all four Table 2 protocols:
//!
//! * [`IdPrefixOracle`] — emits the first `b` bits of the binary
//!   representation of a chosen participant's id.  This is exactly the
//!   paper's tightness construction for the deterministic bounds
//!   (Theorems 3.4 and 3.5): the advice walks `b` steps down the balanced
//!   id tree, leaving `n / 2^b` candidate identities.
//! * [`RangeOracle`] — emits the first `b` bits of the binary
//!   representation of the geometric range index `⌈log k⌉` of the true
//!   participant count.  This is the construction matching the randomized
//!   bounds (Theorems 3.6 and 3.7): it prunes the `⌈log n⌉` geometric size
//!   guesses down to `⌈log n⌉ / 2^b`.

use crp_info::{log2_ceil, range_index_for_size};

use crate::error::PredictError;

/// A bounded-length advice string (the `b` bits handed to every
/// participant).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Advice {
    bits: Vec<bool>,
}

impl Advice {
    /// The empty advice string (the `b = 0` case).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds advice from explicit bits (most significant first).
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Encodes the low `bits` bits of `value`, most significant first.
    pub fn from_value(value: usize, bits: usize) -> Self {
        let bits = (0..bits)
            .rev()
            .map(|shift| (value >> shift) & 1 == 1)
            .collect();
        Self { bits }
    }

    /// Number of advice bits `b`.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if no advice is provided.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The raw bits, most significant first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Interprets the advice as an unsigned integer (most significant bit
    /// first).  The empty advice decodes to 0.
    pub fn to_value(&self) -> usize {
        self.bits
            .iter()
            .fold(0usize, |acc, &bit| (acc << 1) | usize::from(bit))
    }

    /// Renders the advice as a `0`/`1` string.
    pub fn to_bit_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }
}

impl std::fmt::Display for Advice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.bits.is_empty() {
            write!(f, "ε")
        } else {
            write!(f, "{}", self.to_bit_string())
        }
    }
}

/// An advice function with perfect knowledge of the participant set.
///
/// `participants` lists the indices (within `0..universe_size`) of the
/// activated nodes, sorted ascending.  Implementations must return at most
/// `budget_bits` bits.
pub trait AdviceOracle {
    /// Produces the advice string for the given participant set.
    ///
    /// # Errors
    ///
    /// Implementations return [`PredictError::AdviceUnavailable`] when the
    /// participant set is empty or otherwise un-encodable.
    fn advise(
        &self,
        universe_size: usize,
        participants: &[usize],
        budget_bits: usize,
    ) -> Result<Advice, PredictError>;
}

/// Advice = the first `b` bits of the id of one designated participant
/// (the smallest id in the set), read from the most significant bit of a
/// `⌈log n⌉`-bit id.
///
/// With `b ≥ ⌈log n⌉` the advice pins down the participant exactly and the
/// problem is solvable in one round; with fewer bits it halves the
/// candidate set per bit, which is the paper's matching upper bound for
/// Theorems 3.4 and 3.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdPrefixOracle;

impl IdPrefixOracle {
    /// Number of bits needed to name any id in a universe of size `n`.
    pub fn id_bits(universe_size: usize) -> usize {
        if universe_size <= 1 {
            0
        } else {
            log2_ceil(universe_size as u64) as usize
        }
    }

    /// The candidate id interval `[low, high)` that remains after hearing
    /// `advice` in a universe of size `n`.
    ///
    /// The prefix fixes the top `advice.len()` bits of the designated id.
    pub fn candidate_interval(universe_size: usize, advice: &Advice) -> (usize, usize) {
        let id_bits = Self::id_bits(universe_size);
        let used = advice.len().min(id_bits);
        let remaining = id_bits - used;
        let prefix_value = if used == 0 {
            0
        } else {
            // Only the first `used` bits of the advice are meaningful here.
            Advice::from_bits(advice.bits()[..used].to_vec()).to_value()
        };
        let low = prefix_value << remaining;
        let high = (low + (1usize << remaining)).min(universe_size);
        (low.min(universe_size), high)
    }
}

impl AdviceOracle for IdPrefixOracle {
    fn advise(
        &self,
        universe_size: usize,
        participants: &[usize],
        budget_bits: usize,
    ) -> Result<Advice, PredictError> {
        let &target = participants
            .first()
            .ok_or_else(|| PredictError::AdviceUnavailable {
                what: "participant set is empty".into(),
            })?;
        if target >= universe_size {
            return Err(PredictError::AdviceUnavailable {
                what: format!("participant {target} outside universe of size {universe_size}"),
            });
        }
        let id_bits = Self::id_bits(universe_size);
        let used = budget_bits.min(id_bits);
        // Take the top `used` bits of the id (as a `id_bits`-bit number).
        let shifted = target >> (id_bits - used);
        Ok(Advice::from_value(shifted, used))
    }
}

/// Advice = the first `b` bits of the geometric range index `⌈log k⌉ − 1`
/// (0-based) of the true participant count, read from the most significant
/// bit of a `⌈log ⌈log n⌉⌉`-bit index.
///
/// This prunes the set of `⌈log n⌉` geometric size guesses by a factor of
/// `2^b`, matching the randomized upper bounds of Theorems 3.6 and 3.7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RangeOracle;

impl RangeOracle {
    /// Number of geometric ranges for a universe of size `n`.
    pub fn num_ranges(universe_size: usize) -> usize {
        range_index_for_size(universe_size.max(2))
    }

    /// Number of bits needed to name any range for a universe of size `n`.
    pub fn range_bits(universe_size: usize) -> usize {
        let ranges = Self::num_ranges(universe_size);
        if ranges <= 1 {
            0
        } else {
            log2_ceil(ranges as u64) as usize
        }
    }

    /// The candidate (1-based) range interval `[low, high]` remaining after
    /// hearing `advice` in a universe of size `n`.
    pub fn candidate_ranges(universe_size: usize, advice: &Advice) -> (usize, usize) {
        let range_bits = Self::range_bits(universe_size);
        let num_ranges = Self::num_ranges(universe_size);
        let used = advice.len().min(range_bits);
        let remaining = range_bits - used;
        let prefix_value = if used == 0 {
            0
        } else {
            Advice::from_bits(advice.bits()[..used].to_vec()).to_value()
        };
        let low0 = prefix_value << remaining;
        let high0 = (low0 + (1usize << remaining)).min(num_ranges);
        ((low0 + 1).min(num_ranges), high0.max(1))
    }
}

impl AdviceOracle for RangeOracle {
    fn advise(
        &self,
        universe_size: usize,
        participants: &[usize],
        budget_bits: usize,
    ) -> Result<Advice, PredictError> {
        if participants.is_empty() {
            return Err(PredictError::AdviceUnavailable {
                what: "participant set is empty".into(),
            });
        }
        let k = participants.len();
        let range0 = range_index_for_size(k.max(2)) - 1;
        let range_bits = Self::range_bits(universe_size);
        let used = budget_bits.min(range_bits);
        let shifted = range0 >> (range_bits - used);
        Ok(Advice::from_value(shifted, used))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advice_value_round_trip() {
        let advice = Advice::from_value(0b1011, 4);
        assert_eq!(advice.len(), 4);
        assert_eq!(advice.to_value(), 0b1011);
        assert_eq!(advice.to_bit_string(), "1011");
        assert_eq!(advice.to_string(), "1011");
        assert_eq!(Advice::empty().to_value(), 0);
        assert_eq!(Advice::empty().to_string(), "ε");
    }

    #[test]
    fn advice_from_value_truncates_to_requested_bits() {
        let advice = Advice::from_value(0b111111, 3);
        assert_eq!(advice.len(), 3);
        assert_eq!(advice.to_value(), 0b111);
    }

    #[test]
    fn id_prefix_full_budget_identifies_the_participant() {
        let oracle = IdPrefixOracle;
        let n = 256;
        let advice = oracle
            .advise(n, &[137, 200], IdPrefixOracle::id_bits(n))
            .unwrap();
        let (lo, hi) = IdPrefixOracle::candidate_interval(n, &advice);
        assert_eq!((lo, hi), (137, 138));
    }

    #[test]
    fn id_prefix_partial_budget_halves_candidates_per_bit() {
        let oracle = IdPrefixOracle;
        let n = 1024;
        let target = 700;
        for b in 0..=10 {
            let advice = oracle.advise(n, &[target], b).unwrap();
            let (lo, hi) = IdPrefixOracle::candidate_interval(n, &advice);
            assert!(
                lo <= target && target < hi,
                "b={b}: {target} not in [{lo},{hi})"
            );
            assert_eq!(hi - lo, n >> b, "b={b}: wrong candidate count");
        }
    }

    #[test]
    fn id_prefix_budget_beyond_id_bits_is_clamped() {
        let oracle = IdPrefixOracle;
        let advice = oracle.advise(64, &[5], 100).unwrap();
        assert_eq!(advice.len(), 6);
        let (lo, hi) = IdPrefixOracle::candidate_interval(64, &advice);
        assert_eq!((lo, hi), (5, 6));
    }

    #[test]
    fn id_prefix_rejects_empty_and_out_of_universe() {
        let oracle = IdPrefixOracle;
        assert!(oracle.advise(64, &[], 3).is_err());
        assert!(oracle.advise(64, &[64], 3).is_err());
    }

    #[test]
    fn range_oracle_narrows_to_the_true_range() {
        let oracle = RangeOracle;
        let n = 1 << 16;
        let k = 300; // range index 9 (256 < 300 <= 512)
        let participants: Vec<usize> = (0..k).collect();
        let full_bits = RangeOracle::range_bits(n);
        let advice = oracle.advise(n, &participants, full_bits).unwrap();
        let (lo, hi) = RangeOracle::candidate_ranges(n, &advice);
        let true_range = range_index_for_size(k);
        assert!(lo <= true_range && true_range <= hi);
        assert_eq!(lo, hi, "full advice pins the range exactly");
    }

    #[test]
    fn range_oracle_candidate_count_shrinks_with_budget() {
        let n = 1 << 16; // 16 ranges, 4 range bits
        let oracle = RangeOracle;
        let participants: Vec<usize> = (0..1000).collect();
        let mut last_width = usize::MAX;
        for b in 0..=RangeOracle::range_bits(n) {
            let advice = oracle.advise(n, &participants, b).unwrap();
            let (lo, hi) = RangeOracle::candidate_ranges(n, &advice);
            let width = hi - lo + 1;
            assert!(width <= last_width);
            let true_range = range_index_for_size(1000);
            assert!(lo <= true_range && true_range <= hi, "b={b}");
            last_width = width;
        }
        assert_eq!(last_width, 1);
    }

    #[test]
    fn range_oracle_rejects_empty_set() {
        assert!(RangeOracle.advise(64, &[], 2).is_err());
    }

    #[test]
    fn zero_budget_advice_is_empty_and_uninformative() {
        let id_advice = IdPrefixOracle.advise(128, &[77], 0).unwrap();
        assert!(id_advice.is_empty());
        let (lo, hi) = IdPrefixOracle::candidate_interval(128, &id_advice);
        assert_eq!((lo, hi), (0, 128));
        let range_advice = RangeOracle.advise(128, &[0, 1, 2], 0).unwrap();
        assert!(range_advice.is_empty());
        let (rlo, rhi) = RangeOracle::candidate_ranges(128, &range_advice);
        assert_eq!((rlo, rhi), (1, RangeOracle::num_ranges(128)));
    }
}
