//! Adversarial trace model: generative state machines over arrivals and
//! advice, with a canonical hash-stable wire form.
//!
//! The fixed generators in [`crate::ScenarioLibrary`] cover a handful of
//! hand-authored workloads.  The fuzzing layer instead *searches* the
//! scenario space: a [`TraceModel`] is a small explicit state machine
//! (adversary state × arrival process × advice channel) that emits a
//! [`Trace`] — an ordered list of [`TraceEvent`]s — from a seeded RNG, and
//! [`Trace::compile`] deterministically lowers the event list to a
//! [`Scenario`] the existing sweep machinery can run.
//!
//! The event vocabulary mirrors how the paper's adversary interacts with a
//! predictor:
//!
//! * [`TraceEvent::Truth`] adds arrival mass at a geometric level (size
//!   `≈ 2^level`, clamped to `[2, n]`) of the true size process.
//! * [`TraceEvent::Observe`] freezes an advice snapshot: the predictor
//!   observes the truth accumulated *so far* and records it, blended with
//!   uniform-over-ranges smoothing controlled by `fidelity` (1 = sharp,
//!   0 = uninformative).  Smoothing is capped so the divergence
//!   `D_KL(c(X) ‖ c(Y))` stays finite, matching the drift scenarios.
//! * [`TraceEvent::Drift`] shifts the accumulated truth mass by whole
//!   geometric ranges *after* the advice froze — the adversary moves the
//!   network out from under the prediction.
//!
//! Traces serialise to a canonical line-based wire form
//! (`crp-fuzz-trace v1`, floats as IEEE-754 bit patterns in hex) so they
//! can be persisted in a regression corpus, diffed, content-addressed by
//! hash, and shipped through the fleet machinery bit-exactly.

use crp_info::SizeDistribution;
use rand::Rng;

use crate::error::PredictError;
use crate::scenario::Scenario;

/// Sharpest allowed advice: an `Observe` always keeps at least 2% of its
/// mass on the uniform-over-ranges smoothing component, so every range
/// stays in the advice's support and the divergence is finite.
pub const MAX_FIDELITY: f64 = 0.98;

/// One step of an adversarial trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Add `weight` of arrival mass at geometric level `level` (network
    /// size `2^level`, clamped to `[2, n]`) of the true size process.
    Truth {
        /// Geometric level; sizes are `2^level` clamped to `[2, n]`.
        level: u32,
        /// Relative (unnormalised) arrival mass; must be finite and `> 0`.
        weight: f64,
    },
    /// The predictor observes the truth accumulated so far and freezes an
    /// advice snapshot blended towards uniform-over-ranges.
    Observe {
        /// Advice sharpness in `[0, 1]`: the snapshot's mixture weight
        /// (capped at [`MAX_FIDELITY`]); the rest is uniform smoothing.
        fidelity: f64,
    },
    /// Shift every accumulated truth component by `shift` geometric ranges
    /// (positive = larger networks), leaving any frozen advice stale.
    Drift {
        /// Signed range shift; clamped so sizes stay in `[2, n]`.
        shift: i32,
    },
}

/// An ordered adversarial trace over a universe of maximum size `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    universe: usize,
    events: Vec<TraceEvent>,
}

/// Formats an `f64` as its IEEE-754 bit pattern in fixed-width hex, the
/// same bit-exact convention as the shard-spec wire codec.
fn f64_hex(value: f64) -> String {
    format!("{:016x}", value.to_bits())
}

fn parse_f64_hex(text: &str) -> Option<f64> {
    u64::from_str_radix(text, 16).ok().map(f64::from_bits)
}

fn wire_error(what: impl Into<String>) -> PredictError {
    PredictError::InvalidParameter {
        what: format!("trace wire: {}", what.into()),
    }
}

impl Trace {
    /// Magic first line of the wire form.
    pub const WIRE_HEADER: &'static str = "crp-fuzz-trace v1";

    /// Wraps an event list over a universe of maximum size `universe`.
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidParameter`] if `universe < 8` (the scenario
    /// library floor), a `Truth` weight is not finite and positive, or an
    /// `Observe` fidelity is outside `[0, 1]`.
    pub fn new(universe: usize, events: Vec<TraceEvent>) -> Result<Self, PredictError> {
        if universe < 8 {
            return Err(PredictError::InvalidParameter {
                what: format!("trace universe must be >= 8, got {universe}"),
            });
        }
        for (index, event) in events.iter().enumerate() {
            match *event {
                TraceEvent::Truth { weight, .. } => {
                    if !(weight.is_finite() && weight > 0.0) {
                        return Err(PredictError::InvalidParameter {
                            what: format!(
                                "trace event {index}: truth weight must be finite and > 0, \
                                 got {weight}"
                            ),
                        });
                    }
                }
                TraceEvent::Observe { fidelity } => {
                    if !(0.0..=1.0).contains(&fidelity) {
                        return Err(PredictError::InvalidParameter {
                            what: format!(
                                "trace event {index}: observe fidelity must be in [0, 1], \
                                 got {fidelity}"
                            ),
                        });
                    }
                }
                TraceEvent::Drift { .. } => {}
            }
        }
        Ok(Self { universe, events })
    }

    /// Maximum network size `n` the trace is defined over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The ordered event list.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace has no events (compiles to the uniform-over-ranges
    /// scenario with accurate advice).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The size a geometric level denotes in this universe.
    fn level_size(&self, level: u32) -> usize {
        let size = 1usize.checked_shl(level.min(62)).unwrap_or(usize::MAX);
        size.clamp(2, self.universe)
    }

    /// Shifts a size by whole geometric ranges, clamped to `[2, n]`.
    fn shift_size(&self, size: usize, shift: i32) -> usize {
        let mut shifted = size;
        if shift >= 0 {
            for _ in 0..shift.min(62) {
                shifted = shifted.saturating_mul(2);
            }
        } else {
            shifted >>= shift.unsigned_abs().min(62);
        }
        shifted.clamp(2, self.universe)
    }

    /// The truth distribution the accumulated components currently denote.
    fn truth_of(&self, components: &[(usize, f64)]) -> Result<SizeDistribution, PredictError> {
        if components.is_empty() {
            Ok(SizeDistribution::uniform_ranges(self.universe)?)
        } else {
            Ok(SizeDistribution::mixture_of_point_masses(
                self.universe,
                components,
            )?)
        }
    }

    /// Deterministically lowers the trace to a runnable [`Scenario`].
    ///
    /// Events are replayed in order over an accumulator of
    /// `(size, weight)` truth components; the final truth is their
    /// normalised mixture (uniform-over-ranges when no `Truth` event
    /// fired), and the advice is the snapshot of the *last* `Observe`
    /// (accurate advice when the trace never observes).  Levels and
    /// shifts are clamped to the universe, so every trace accepted by
    /// [`Trace::new`] / [`Trace::from_wire`] compiles — shrinking can
    /// never produce an uncompilable candidate.
    ///
    /// # Errors
    ///
    /// [`PredictError::Distribution`] only for pathological accumulated
    /// weights (e.g. overflow to non-finite sums).
    pub fn compile(&self, name: impl Into<String>) -> Result<Scenario, PredictError> {
        let mut components: Vec<(usize, f64)> = Vec::new();
        let mut advice: Option<SizeDistribution> = None;
        let add = |components: &mut Vec<(usize, f64)>, size: usize, weight: f64| match components
            .iter_mut()
            .find(|(s, _)| *s == size)
        {
            Some((_, w)) => *w += weight,
            None => components.push((size, weight)),
        };
        for event in &self.events {
            match *event {
                TraceEvent::Truth { level, weight } => {
                    add(&mut components, self.level_size(level), weight);
                }
                TraceEvent::Observe { fidelity } => {
                    let snapshot = self.truth_of(&components)?;
                    let uniform = SizeDistribution::uniform_ranges(self.universe)?;
                    advice = Some(snapshot.mix(&uniform, fidelity.min(MAX_FIDELITY))?);
                }
                TraceEvent::Drift { shift } => {
                    let shifted: Vec<(usize, f64)> = components
                        .iter()
                        .map(|&(size, weight)| (self.shift_size(size, shift), weight))
                        .collect();
                    components.clear();
                    for (size, weight) in shifted {
                        add(&mut components, size, weight);
                    }
                }
            }
        }
        let truth = self.truth_of(&components)?;
        Ok(match advice {
            Some(advice) => Scenario::with_advice(name, truth, advice),
            None => Scenario::new(name, truth),
        })
    }

    /// Serialises the trace to its canonical wire form.
    ///
    /// The form is line-based and bit-exact: floats are IEEE-754 bit
    /// patterns in fixed-width hex, so serialise → deserialise →
    /// serialise is the identity on bytes and the wire text is a stable
    /// input for content hashing.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(Self::WIRE_HEADER);
        out.push('\n');
        out.push_str(&format!("universe {}\n", self.universe));
        for event in &self.events {
            match *event {
                TraceEvent::Truth { level, weight } => {
                    out.push_str(&format!("truth {level} {}\n", f64_hex(weight)));
                }
                TraceEvent::Observe { fidelity } => {
                    out.push_str(&format!("observe {}\n", f64_hex(fidelity)));
                }
                TraceEvent::Drift { shift } => {
                    out.push_str(&format!("drift {shift}\n"));
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parses the canonical wire form produced by [`Trace::to_wire`].
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidParameter`] naming the offending line for a
    /// missing header, malformed event, missing `end` marker, or trailing
    /// garbage; field validation is as in [`Trace::new`].
    pub fn from_wire(text: &str) -> Result<Self, PredictError> {
        let mut lines = text.lines();
        match lines.next() {
            Some(Self::WIRE_HEADER) => {}
            other => {
                return Err(wire_error(format!(
                    "expected header {:?}, got {other:?}",
                    Self::WIRE_HEADER
                )))
            }
        }
        let universe = match lines.next().and_then(|l| l.strip_prefix("universe ")) {
            Some(value) => value
                .parse::<usize>()
                .map_err(|_| wire_error(format!("malformed universe line: {value:?}")))?,
            None => return Err(wire_error("missing universe line")),
        };
        let mut events = Vec::new();
        let mut saw_end = false;
        for line in lines.by_ref() {
            if line == "end" {
                saw_end = true;
                break;
            }
            let mut fields = line.split_whitespace();
            let event = match fields.next() {
                Some("truth") => {
                    let level = fields
                        .next()
                        .and_then(|f| f.parse::<u32>().ok())
                        .ok_or_else(|| wire_error(format!("malformed truth line: {line:?}")))?;
                    let weight = fields
                        .next()
                        .and_then(parse_f64_hex)
                        .ok_or_else(|| wire_error(format!("malformed truth line: {line:?}")))?;
                    TraceEvent::Truth { level, weight }
                }
                Some("observe") => {
                    let fidelity = fields
                        .next()
                        .and_then(parse_f64_hex)
                        .ok_or_else(|| wire_error(format!("malformed observe line: {line:?}")))?;
                    TraceEvent::Observe { fidelity }
                }
                Some("drift") => {
                    let shift = fields
                        .next()
                        .and_then(|f| f.parse::<i32>().ok())
                        .ok_or_else(|| wire_error(format!("malformed drift line: {line:?}")))?;
                    TraceEvent::Drift { shift }
                }
                other => return Err(wire_error(format!("unknown event {other:?} in {line:?}"))),
            };
            if fields.next().is_some() {
                return Err(wire_error(format!("trailing fields in {line:?}")));
            }
            events.push(event);
        }
        if !saw_end {
            return Err(wire_error("missing end marker"));
        }
        if lines.next().is_some() {
            return Err(wire_error("trailing lines after end marker"));
        }
        Self::new(universe, events)
    }
}

/// The adversary families the generative model covers, beyond the fixed
/// scenario generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Arrivals fixed up front, high-fidelity advice: the accurate-advice
    /// regime the consistency bounds cover.
    Oblivious,
    /// A few concentrated activity levels; most mass arrives in a burst
    /// *after* the advice froze.
    Bursty,
    /// Observes mid-trace, then keeps drifting the truth away from the
    /// snapshot one range at a time.
    Adaptive,
    /// Lets the predictor take a sharp early snapshot, then jams: piles
    /// arrival mass onto the largest levels where that sharp advice puts
    /// the least probability.
    ReactiveJamming,
}

impl AdversaryKind {
    /// Every adversary family, in a stable order.
    pub const ALL: [AdversaryKind; 4] = [
        AdversaryKind::Oblivious,
        AdversaryKind::Bursty,
        AdversaryKind::Adaptive,
        AdversaryKind::ReactiveJamming,
    ];

    /// Stable wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::Oblivious => "oblivious",
            AdversaryKind::Bursty => "bursty",
            AdversaryKind::Adaptive => "adaptive",
            AdversaryKind::ReactiveJamming => "reactive-jamming",
        }
    }

    /// Looks an adversary family up by its stable name.
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidParameter`] listing the valid names.
    pub fn by_name(name: &str) -> Result<Self, PredictError> {
        Self::ALL
            .into_iter()
            .find(|kind| kind.name() == name)
            .ok_or_else(|| PredictError::InvalidParameter {
                what: format!(
                    "unknown adversary {name:?}; expected one of: {}",
                    Self::ALL.map(|k| k.name()).join(", ")
                ),
            })
    }
}

/// A seeded generative model producing adversarial traces of one
/// [`AdversaryKind`] over a fixed universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceModel {
    kind: AdversaryKind,
    universe: usize,
}

impl TraceModel {
    /// A model for `kind` over networks of maximum size `universe`.
    ///
    /// # Errors
    ///
    /// [`PredictError::InvalidParameter`] if `universe < 8`.
    pub fn new(kind: AdversaryKind, universe: usize) -> Result<Self, PredictError> {
        if universe < 8 {
            return Err(PredictError::InvalidParameter {
                what: format!("trace model universe must be >= 8, got {universe}"),
            });
        }
        Ok(Self { kind, universe })
    }

    /// The adversary family this model generates.
    pub fn kind(&self) -> AdversaryKind {
        self.kind
    }

    /// The universe traces are generated over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Highest geometric level with a distinct size in this universe.
    fn max_level(&self) -> u32 {
        usize::BITS - 1 - self.universe.leading_zeros()
    }

    /// Generates one trace of roughly `steps` events.  Deterministic in
    /// the RNG: the same seeded RNG state yields a byte-identical wire
    /// form.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, steps: usize) -> Trace {
        let steps = steps.max(2);
        let top = self.max_level().max(1);
        let mut events = Vec::with_capacity(steps + 2);
        match self.kind {
            AdversaryKind::Oblivious => {
                for _ in 0..steps {
                    events.push(TraceEvent::Truth {
                        level: rng.gen_range(1..=top),
                        weight: rng.gen_range(0.05..1.0),
                    });
                }
                events.push(TraceEvent::Observe {
                    fidelity: rng.gen_range(0.9..1.0),
                });
            }
            AdversaryKind::Bursty => {
                let base = rng.gen_range(1..=(top / 2).max(1));
                let burst = rng.gen_range((top - 1).max(1)..=top);
                let before = (steps / 2).max(1);
                for _ in 0..before {
                    events.push(TraceEvent::Truth {
                        level: base,
                        weight: rng.gen_range(0.6..1.0),
                    });
                }
                events.push(TraceEvent::Observe {
                    fidelity: rng.gen_range(0.9..1.0),
                });
                for _ in before..steps {
                    events.push(TraceEvent::Truth {
                        level: burst,
                        weight: rng.gen_range(0.3..0.8),
                    });
                }
            }
            AdversaryKind::Adaptive => {
                let before = (steps / 3).max(1);
                for _ in 0..before {
                    events.push(TraceEvent::Truth {
                        level: rng.gen_range(1..=top),
                        weight: rng.gen_range(0.2..1.0),
                    });
                }
                events.push(TraceEvent::Observe {
                    fidelity: rng.gen_range(0.5..0.9),
                });
                for _ in before..steps {
                    if rng.gen_range(0u32..2) == 0 {
                        events.push(TraceEvent::Drift {
                            shift: if rng.gen_range(0u32..2) == 0 { 1 } else { -1 },
                        });
                    } else {
                        events.push(TraceEvent::Truth {
                            level: rng.gen_range(1..=top),
                            weight: rng.gen_range(0.1..0.6),
                        });
                    }
                }
            }
            AdversaryKind::ReactiveJamming => {
                events.push(TraceEvent::Truth {
                    level: rng.gen_range(1..=(top / 2).max(1)),
                    weight: rng.gen_range(0.5..1.0),
                });
                events.push(TraceEvent::Observe {
                    fidelity: rng.gen_range(0.95..1.0),
                });
                for step in 0..steps {
                    if step % 3 == 2 {
                        events.push(TraceEvent::Drift { shift: 1 });
                    } else {
                        // Jam where the sharp snapshot has least mass: the
                        // top levels, with weight growing over time.
                        events.push(TraceEvent::Truth {
                            level: top,
                            weight: rng.gen_range(0.5..1.0) * (1.0 + step as f64),
                        });
                    }
                }
            }
        }
        Trace::new(self.universe, events).expect("generated events are valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn empty_trace_compiles_to_uniform_with_accurate_advice() {
        let trace = Trace::new(256, vec![]).unwrap();
        let scenario = trace.compile("empty").unwrap();
        assert!(!scenario.has_drifted_advice());
        assert_eq!(
            scenario.distribution(),
            &SizeDistribution::uniform_ranges(256).unwrap()
        );
    }

    #[test]
    fn levels_and_shifts_are_clamped_to_the_universe() {
        let trace = Trace::new(
            64,
            vec![
                TraceEvent::Truth {
                    level: 40,
                    weight: 1.0,
                },
                TraceEvent::Drift { shift: 90 },
            ],
        )
        .unwrap();
        let scenario = trace.compile("clamped").unwrap();
        assert_eq!(scenario.distribution().support(), vec![64]);
        let down = Trace::new(
            64,
            vec![
                TraceEvent::Truth {
                    level: 3,
                    weight: 1.0,
                },
                TraceEvent::Drift { shift: -90 },
            ],
        )
        .unwrap();
        assert_eq!(
            down.compile("floor").unwrap().distribution().support(),
            vec![2]
        );
    }

    #[test]
    fn observe_freezes_advice_before_later_drift() {
        let trace = Trace::new(
            256,
            vec![
                TraceEvent::Truth {
                    level: 3,
                    weight: 1.0,
                },
                TraceEvent::Observe { fidelity: 0.95 },
                TraceEvent::Drift { shift: 3 },
            ],
        )
        .unwrap();
        let scenario = trace.compile("stale").unwrap();
        assert!(scenario.has_drifted_advice());
        assert_eq!(scenario.distribution().support(), vec![64]);
        assert!(scenario.advice_divergence() > 1.0);
        assert!(scenario.advice_divergence().is_finite());
    }

    #[test]
    fn fidelity_is_capped_so_divergence_stays_finite() {
        let trace = Trace::new(
            256,
            vec![
                TraceEvent::Truth {
                    level: 2,
                    weight: 1.0,
                },
                TraceEvent::Observe { fidelity: 1.0 },
                TraceEvent::Drift { shift: 4 },
            ],
        )
        .unwrap();
        let scenario = trace.compile("capped").unwrap();
        assert!(scenario.advice_divergence().is_finite());
    }

    #[test]
    fn wire_round_trip_is_byte_identical() {
        let trace = Trace::new(
            128,
            vec![
                TraceEvent::Truth {
                    level: 4,
                    weight: 0.625,
                },
                TraceEvent::Observe { fidelity: 0.9 },
                TraceEvent::Drift { shift: -2 },
            ],
        )
        .unwrap();
        let wire = trace.to_wire();
        let parsed = Trace::from_wire(&wire).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.to_wire(), wire);
    }

    #[test]
    fn from_wire_rejects_malformed_inputs() {
        assert!(Trace::from_wire("").is_err());
        assert!(Trace::from_wire("crp-fuzz-trace v1\nuniverse 64\n").is_err());
        assert!(Trace::from_wire("crp-fuzz-trace v1\nuniverse nope\nend\n").is_err());
        assert!(Trace::from_wire("crp-fuzz-trace v1\nuniverse 64\nboom 1\nend\n").is_err());
        assert!(Trace::from_wire("crp-fuzz-trace v1\nuniverse 64\nend\njunk\n").is_err());
        assert!(Trace::from_wire("crp-fuzz-trace v1\nuniverse 64\ndrift 1 9\nend\n").is_err());
        // Validation matches Trace::new: universe floor and field ranges.
        assert!(Trace::from_wire("crp-fuzz-trace v1\nuniverse 4\nend\n").is_err());
        let negative = format!(
            "crp-fuzz-trace v1\nuniverse 64\ntruth 3 {}\nend\n",
            f64_hex(-1.0)
        );
        assert!(Trace::from_wire(&negative).is_err());
    }

    #[test]
    fn models_are_deterministic_and_cover_all_kinds() {
        for kind in AdversaryKind::ALL {
            let model = TraceModel::new(kind, 256).unwrap();
            let a = model.generate(&mut ChaCha8Rng::seed_from_u64(7), 10);
            let b = model.generate(&mut ChaCha8Rng::seed_from_u64(7), 10);
            assert_eq!(a.to_wire(), b.to_wire(), "{}", kind.name());
            let scenario = a.compile(kind.name()).unwrap();
            let total: f64 = scenario.distribution().masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{}", kind.name());
            assert_eq!(Trace::from_wire(&a.to_wire()).unwrap(), a);
        }
    }

    #[test]
    fn adversary_names_round_trip() {
        for kind in AdversaryKind::ALL {
            assert_eq!(AdversaryKind::by_name(kind.name()).unwrap(), kind);
        }
        let err = AdversaryKind::by_name("nope").unwrap_err();
        assert!(err.to_string().contains("reactive-jamming"), "{err}");
    }
}
