//! Noise models: turning a true distribution into an imperfect prediction.
//!
//! The paper's upper bounds (Theorems 2.12 and 2.16) price a miscalibrated
//! prediction `Y` through the divergence `D_KL(c(X) ‖ c(Y))`, and note that
//! if every probability in `Y` is within a bounded constant factor of the
//! corresponding probability in `X` the divergence is `O(1)`.  The models
//! here generate predictions whose divergence can be dialled:
//!
//! * [`constant_factor_noise`] — multiply each mass by a random factor in
//!   `[1/γ, γ]`; keeps the divergence bounded by `O(log γ)` regardless of
//!   the distribution, exercising the paper's "good prediction" regime.
//! * [`mass_shift`] — move a fraction of the probability mass onto the
//!   least likely ranges, producing arbitrarily large (even unbounded)
//!   divergence: the "bad prediction" regime.
//! * [`support_shift`] — shift the whole distribution by a number of
//!   geometric ranges, the classic "the model learned last week's network"
//!   failure mode.
//! * [`towards_uniform`] — mix with the uniform-over-ranges distribution,
//!   smoothly trading prediction sharpness for robustness.

use crp_info::{CondensedDistribution, SizeDistribution};
use rand::Rng;

use crate::error::PredictError;

/// Multiplies every probability mass by an independent random factor drawn
/// log-uniformly from `[1/gamma, gamma]`, then renormalises.
///
/// For `gamma` close to 1 the prediction is nearly exact; the condensed KL
/// divergence stays bounded by roughly `2·log2(gamma)` bits for any input.
///
/// # Errors
///
/// Returns [`PredictError::InvalidParameter`] if `gamma < 1` or is not
/// finite.
pub fn constant_factor_noise<R: Rng + ?Sized>(
    truth: &SizeDistribution,
    gamma: f64,
    rng: &mut R,
) -> Result<SizeDistribution, PredictError> {
    if gamma < 1.0 || !gamma.is_finite() {
        return Err(PredictError::InvalidParameter {
            what: format!("constant-factor noise requires gamma >= 1, got {gamma}"),
        });
    }
    let log_gamma = gamma.ln();
    let weights: Vec<f64> = truth
        .masses()
        .iter()
        .map(|&m| {
            if m <= 0.0 {
                0.0
            } else {
                let exponent = rng.gen_range(-log_gamma..=log_gamma);
                m * exponent.exp()
            }
        })
        .collect();
    Ok(SizeDistribution::from_weights(weights)?)
}

/// Moves `fraction` of the total probability mass away from where the truth
/// puts it and spreads that mass uniformly over the sizes the truth
/// considers *least* likely, producing a prediction that is confidently
/// wrong.
///
/// With `fraction = 0` the prediction equals the truth; as `fraction → 1`
/// the condensed divergence grows without bound (and becomes infinite when
/// the truth's support receives zero predicted mass).
///
/// # Errors
///
/// Returns [`PredictError::InvalidParameter`] unless `0 ≤ fraction ≤ 1`.
pub fn mass_shift(
    truth: &SizeDistribution,
    fraction: f64,
) -> Result<SizeDistribution, PredictError> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(PredictError::InvalidParameter {
            what: format!("mass shift fraction must be in [0,1], got {fraction}"),
        });
    }
    let n = truth.max_size();
    // Rank sizes from least to most likely under the truth (ignoring size 1,
    // which carries no contention).
    let mut order: Vec<usize> = (2..=n).collect();
    order.sort_by(|&a, &b| {
        truth
            .probability_of(a)
            .partial_cmp(&truth.probability_of(b))
            .expect("masses are finite")
    });
    let target_count = (n / 4).max(1);
    let targets: Vec<usize> = order.into_iter().take(target_count).collect();

    let mut weights: Vec<f64> = truth
        .masses()
        .iter()
        .map(|&m| m * (1.0 - fraction))
        .collect();
    let bonus = fraction / targets.len() as f64;
    for size in targets {
        weights[size - 1] += bonus;
    }
    Ok(SizeDistribution::from_weights(weights)?)
}

/// Shifts the entire distribution by `range_offset` geometric ranges
/// (positive = predicts a larger network than reality), clamping at the
/// boundaries.
///
/// Models a predictor trained on stale data: the *shape* of the prediction
/// is right but its location is off by a factor of `2^range_offset`.
///
/// # Errors
///
/// Returns [`PredictError::InvalidParameter`] if the offset magnitude is at
/// least the number of ranges in the support.
pub fn support_shift(
    truth: &SizeDistribution,
    range_offset: i32,
) -> Result<SizeDistribution, PredictError> {
    let n = truth.max_size();
    let num_ranges = CondensedDistribution::from_sizes(truth).num_ranges() as i32;
    if range_offset.abs() >= num_ranges {
        return Err(PredictError::InvalidParameter {
            what: format!(
                "support shift of {range_offset} ranges exceeds the {num_ranges}-range support"
            ),
        });
    }
    let factor = 2f64.powi(range_offset);
    let mut weights = vec![0.0; n];
    for size in 1..=n {
        let m = truth.probability_of(size);
        if m <= 0.0 {
            continue;
        }
        let shifted = ((size as f64 * factor).round() as usize).clamp(2, n);
        weights[shifted - 1] += m;
    }
    Ok(SizeDistribution::from_weights(weights)?)
}

/// Mixes the truth with the uniform-over-ranges distribution:
/// `Y = (1 − lambda) · X + lambda · U`.
///
/// `lambda = 0` is a perfect prediction, `lambda = 1` is an uninformative
/// one.  Unlike [`mass_shift`] the divergence stays finite for
/// `lambda > 0` because the prediction never rules out any range.
///
/// # Errors
///
/// Returns [`PredictError::InvalidParameter`] unless `0 ≤ lambda ≤ 1`.
pub fn towards_uniform(
    truth: &SizeDistribution,
    lambda: f64,
) -> Result<SizeDistribution, PredictError> {
    if !(0.0..=1.0).contains(&lambda) {
        return Err(PredictError::InvalidParameter {
            what: format!("mixing weight must be in [0,1], got {lambda}"),
        });
    }
    let uniform = SizeDistribution::uniform_ranges(truth.max_size())?;
    Ok(uniform.mix(truth, lambda)?)
}

/// Condensed KL divergence `D_KL(c(truth) ‖ c(prediction))` — the exact
/// quantity appearing in the paper's upper bounds.
pub fn condensed_divergence(truth: &SizeDistribution, prediction: &SizeDistribution) -> f64 {
    let ct = CondensedDistribution::from_sizes(truth);
    let cp = CondensedDistribution::from_sizes(prediction);
    ct.kl_divergence(&cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn truth() -> SizeDistribution {
        SizeDistribution::bimodal(1024, 32, 600, 0.8).unwrap()
    }

    #[test]
    fn constant_factor_noise_keeps_divergence_small() {
        let truth = truth();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pred = constant_factor_noise(&truth, 1.5, &mut rng).unwrap();
        let d = condensed_divergence(&truth, &pred);
        assert!(d.is_finite());
        assert!(d < 2.0 * 1.5f64.log2() + 0.5, "divergence {d} too large");
    }

    #[test]
    fn constant_factor_noise_with_gamma_one_is_exact() {
        let truth = truth();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let pred = constant_factor_noise(&truth, 1.0, &mut rng).unwrap();
        assert!(condensed_divergence(&truth, &pred) < 1e-9);
    }

    #[test]
    fn constant_factor_noise_rejects_gamma_below_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(constant_factor_noise(&truth(), 0.5, &mut rng).is_err());
    }

    #[test]
    fn mass_shift_divergence_grows_with_fraction() {
        let truth = truth();
        let small = mass_shift(&truth, 0.1).unwrap();
        let large = mass_shift(&truth, 0.9).unwrap();
        let d_small = condensed_divergence(&truth, &small);
        let d_large = condensed_divergence(&truth, &large);
        assert!(d_small < d_large, "d_small={d_small}, d_large={d_large}");
        assert!(condensed_divergence(&truth, &mass_shift(&truth, 0.0).unwrap()) < 1e-9);
    }

    #[test]
    fn mass_shift_validates_fraction() {
        assert!(mass_shift(&truth(), -0.1).is_err());
        assert!(mass_shift(&truth(), 1.1).is_err());
    }

    #[test]
    fn support_shift_moves_the_mode() {
        let truth = SizeDistribution::point_mass(1024, 64).unwrap();
        let shifted = support_shift(&truth, 2).unwrap();
        // 64 * 4 = 256 is now the most likely size.
        let best = (1..=1024)
            .max_by(|&a, &b| {
                shifted
                    .probability_of(a)
                    .partial_cmp(&shifted.probability_of(b))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best, 256);
        assert!(support_shift(&truth, 100).is_err());
    }

    #[test]
    fn support_shift_negative_direction() {
        let truth = SizeDistribution::point_mass(1024, 64).unwrap();
        let shifted = support_shift(&truth, -3).unwrap();
        assert!(shifted.probability_of(8) > 0.99);
    }

    #[test]
    fn towards_uniform_interpolates_divergence() {
        let truth = truth();
        let mild = towards_uniform(&truth, 0.2).unwrap();
        let strong = towards_uniform(&truth, 0.9).unwrap();
        let d_mild = condensed_divergence(&truth, &mild);
        let d_strong = condensed_divergence(&truth, &strong);
        assert!(d_mild <= d_strong + 1e-12);
        assert!(d_strong.is_finite(), "mixing never zeroes out a range");
        assert!(towards_uniform(&truth, 2.0).is_err());
    }

    #[test]
    fn divergence_of_truth_with_itself_is_zero() {
        let t = truth();
        assert_eq!(condensed_divergence(&t, &t), 0.0);
    }
}
