//! Prediction substrate for the *Contention Resolution with Predictions*
//! reproduction.
//!
//! The paper imagines that predictions "might be generated in practice by
//! machine learning models able to observe the behavior of a given
//! environment over time".  Its theorems, however, are parameterised only
//! by the *distribution* handed to the algorithm — its condensed entropy
//! `H(c(X))` and its KL divergence from the true distribution — and, in the
//! perfect-advice model of §3, by the number of advice bits `b`.  This crate
//! provides everything needed to generate such predictions with controlled
//! quality:
//!
//! * [`ScenarioLibrary`] / [`Scenario`] — named distribution families
//!   (point mass, uniform, geometric, Zipf, bimodal, uniform-over-ranges)
//!   used as the ground-truth size processes in the experiments.
//! * [`noise`] — perturbation models that turn a true distribution `X` into
//!   a prediction `Y` whose divergence `D_KL(c(X) ‖ c(Y))` can be dialled up
//!   or down (constant-factor noise, mass shifts, support shifts).
//! * [`LearnedPredictor`] — the "ML model" substitute: a histogram
//!   estimator trained on samples of the true process, with Laplace
//!   smoothing.  More training samples ⇒ lower divergence, matching the
//!   paper's "improves for free as the models improve" narrative.
//! * [`advice`] — perfect-advice oracles: functions with full knowledge of
//!   the participant set that emit the best possible `b`-bit advice for the
//!   §3 protocols.
//! * [`TraceModel`] / [`Trace`] — the fuzzing layer's generative adversary
//!   models: seeded state machines emitting adversarial arrival/advice
//!   traces with a canonical hash-stable wire form, compiled down to
//!   ordinary [`Scenario`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
mod error;
mod learned;
pub mod noise;
mod scenario;
mod trace;

pub use advice::{Advice, AdviceOracle, IdPrefixOracle, RangeOracle};
pub use error::PredictError;
pub use learned::LearnedPredictor;
pub use scenario::{Scenario, ScenarioLibrary};
pub use trace::{AdversaryKind, Trace, TraceEvent, TraceModel, MAX_FIDELITY};
