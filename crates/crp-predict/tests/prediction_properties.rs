//! Property-style tests over the prediction substrate, driven by
//! deterministic seeded sweeps (the environment has no `proptest`).

use crp_info::{CondensedDistribution, SizeDistribution};
use crp_predict::{noise, LearnedPredictor, ScenarioLibrary};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn noise_models_always_produce_valid_distributions() {
    let mut outer = ChaCha8Rng::seed_from_u64(21);
    for seed in 0u64..40 {
        let exp = outer.gen_range(4u32..13);
        let lambda = outer.gen_range(0.0f64..=1.0);
        let fraction = outer.gen_range(0.0f64..=1.0);
        let gamma = outer.gen_range(1.0f64..4.0);
        let n = 1usize << exp;
        let truth = SizeDistribution::geometric(n, 0.2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for prediction in [
            noise::towards_uniform(&truth, lambda).unwrap(),
            noise::mass_shift(&truth, fraction).unwrap(),
            noise::constant_factor_noise(&truth, gamma, &mut rng).unwrap(),
        ] {
            let total: f64 = prediction.masses().iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
            assert_eq!(prediction.max_size(), n);
        }
    }
}

#[test]
fn constant_factor_noise_keeps_divergence_bounded_by_log_gamma() {
    let mut outer = ChaCha8Rng::seed_from_u64(22);
    for seed in 0u64..40 {
        let exp = outer.gen_range(5u32..13);
        let gamma = outer.gen_range(1.0f64..3.0);
        let n = 1usize << exp;
        let truth = SizeDistribution::bimodal(n, (n / 16).max(2), (n / 2).max(2), 0.8).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let prediction = noise::constant_factor_noise(&truth, gamma, &mut rng).unwrap();
        let d = noise::condensed_divergence(&truth, &prediction);
        assert!(d.is_finite());
        // Each per-size factor is within [1/gamma, gamma]; after
        // renormalisation the per-range ratio stays within gamma^2, so the
        // divergence is at most 2 log2(gamma).
        assert!(d <= 2.0 * gamma.log2() + 1e-6, "d = {d}, gamma = {gamma}");
    }
}

#[test]
fn towards_uniform_divergence_is_monotone_in_lambda() {
    let mut outer = ChaCha8Rng::seed_from_u64(23);
    for _ in 0..40 {
        let exp = outer.gen_range(5u32..12);
        let low = outer.gen_range(0.0f64..0.5);
        let delta = outer.gen_range(0.0f64..0.5);
        let n = 1usize << exp;
        let truth = SizeDistribution::zipf(n, 1.3).unwrap();
        let mild = noise::towards_uniform(&truth, low).unwrap();
        let strong = noise::towards_uniform(&truth, low + delta).unwrap();
        let d_mild = noise::condensed_divergence(&truth, &mild);
        let d_strong = noise::condensed_divergence(&truth, &strong);
        assert!(d_mild <= d_strong + 1e-9);
    }
}

#[test]
fn learned_predictor_observations_equal_training_samples() {
    let mut outer = ChaCha8Rng::seed_from_u64(24);
    for seed in 0u64..30 {
        let exp = outer.gen_range(4u32..12);
        let samples = outer.gen_range(0usize..400);
        let n = 1usize << exp;
        let truth = SizeDistribution::uniform_sizes(n).unwrap();
        let mut model = LearnedPredictor::new(n, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        model.train(&truth, samples, &mut rng);
        assert_eq!(model.observations(), samples as u64);
        let condensed = model.predicted_condensed();
        let total: f64 = condensed.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(model.divergence_from(&truth).is_finite());
    }
}

#[test]
fn scenario_library_scales_with_universe_size() {
    for exp in 3u32..16 {
        let n = 1usize << exp;
        let library = ScenarioLibrary::new(n).unwrap();
        for scenario in library.all() {
            assert_eq!(scenario.distribution().max_size(), n);
            let condensed = scenario.condensed();
            assert!(condensed.entropy() <= condensed.max_entropy() + 1e-9);
            assert!(scenario.condensed_entropy() >= -1e-12);
        }
    }
}

#[test]
fn support_shift_round_trips_within_one_range() {
    for exp in 6u32..13 {
        for shift in 1i32..3 {
            // Shifting up then down returns the mass to within one geometric
            // range of where it started (rounding can move it by one).
            let n = 1usize << exp;
            let original_size = (n / 8).max(2);
            let truth = SizeDistribution::point_mass(n, original_size).unwrap();
            let up = noise::support_shift(&truth, shift).unwrap();
            let back = noise::support_shift(&up, -shift).unwrap();
            let original_range = CondensedDistribution::from_sizes(&truth).support()[0];
            let recovered_range = CondensedDistribution::from_sizes(&back)
                .support()
                .first()
                .copied()
                .unwrap();
            assert!(original_range.abs_diff(recovered_range) <= 1);
        }
    }
}
