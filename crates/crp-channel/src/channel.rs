//! The slotted multiple-access channel.

use crate::round::{Feedback, RoundOutcome};

/// Whether the channel provides collision detection.
///
/// The paper analyses both assumptions; every protocol in `crp-protocols`
/// declares which mode it needs and the executor checks the pairing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelMode {
    /// All participants can distinguish collision from silence.
    CollisionDetection,
    /// Collisions are indistinguishable from silence for listeners.
    NoCollisionDetection,
}

impl ChannelMode {
    /// True if this mode provides collision detection.
    pub fn has_collision_detection(self) -> bool {
        matches!(self, ChannelMode::CollisionDetection)
    }
}

impl std::fmt::Display for ChannelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelMode::CollisionDetection => write!(f, "collision detection"),
            ChannelMode::NoCollisionDetection => write!(f, "no collision detection"),
        }
    }
}

/// A synchronous slotted multiple-access channel.
///
/// The channel is purely reactive: each call to
/// [`Channel::resolve_round`] takes the transmit decision of every
/// participant, classifies the round, appends it to the channel's outcome
/// log and returns the [`RoundOutcome`].  Per-participant observations are
/// derived with [`Channel::feedback_for`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Channel {
    mode: ChannelMode,
    outcomes: Vec<RoundOutcome>,
}

impl Channel {
    /// Creates a channel with the given detection mode and an empty history.
    pub fn new(mode: ChannelMode) -> Self {
        Self {
            mode,
            outcomes: Vec::new(),
        }
    }

    /// The channel's detection mode.
    pub fn mode(&self) -> ChannelMode {
        self.mode
    }

    /// Number of rounds that have been resolved so far.
    pub fn rounds_elapsed(&self) -> usize {
        self.outcomes.len()
    }

    /// The full outcome log, one entry per elapsed round.
    pub fn outcomes(&self) -> &[RoundOutcome] {
        &self.outcomes
    }

    /// Resolves one round given each participant's transmit decision
    /// (`decisions[i]` is whether participant `i` of the current
    /// participant set transmits).
    ///
    /// Returns the ground-truth outcome.  The outcome is also appended to
    /// the channel log.
    pub fn resolve_round(&mut self, decisions: &[bool]) -> RoundOutcome {
        let transmitters = decisions.iter().filter(|&&d| d).count();
        let outcome = RoundOutcome::from_transmitter_count(transmitters);
        self.outcomes.push(outcome);
        outcome
    }

    /// What a participant observes for a given round outcome on this
    /// channel, depending on whether that participant transmitted.
    ///
    /// * A successful round is announced to everyone as
    ///   [`Feedback::Resolved`] (the problem is defined to end there).
    /// * With collision detection, collision and silence are reported
    ///   faithfully.
    /// * Without collision detection, collision and silence both appear as
    ///   [`Feedback::NothingHeard`].  (A transmitter involved in a collision
    ///   also learns nothing beyond the fact that it did not succeed, which
    ///   is exactly what `NothingHeard` conveys.)
    pub fn feedback_for(&self, outcome: RoundOutcome, _transmitted: bool) -> Feedback {
        match (outcome, self.mode) {
            (RoundOutcome::Success, _) => Feedback::Resolved,
            (RoundOutcome::Collision, ChannelMode::CollisionDetection) => {
                Feedback::CollisionDetected
            }
            (RoundOutcome::Silence, ChannelMode::CollisionDetection) => Feedback::SilenceDetected,
            (
                RoundOutcome::Collision | RoundOutcome::Silence,
                ChannelMode::NoCollisionDetection,
            ) => Feedback::NothingHeard,
        }
    }

    /// True if some round in the log resolved contention.
    pub fn resolved(&self) -> bool {
        self.outcomes.iter().any(|o| o.is_success())
    }

    /// The 1-based round number of the first success, if any.
    pub fn resolution_round(&self) -> Option<usize> {
        self.outcomes
            .iter()
            .position(|o| o.is_success())
            .map(|i| i + 1)
    }

    /// Clears the outcome log, keeping the mode.  Used when the same channel
    /// object is reused across Monte-Carlo trials.
    pub fn reset(&mut self) {
        self.outcomes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_classification_matches_transmitter_count() {
        let mut ch = Channel::new(ChannelMode::CollisionDetection);
        assert_eq!(ch.resolve_round(&[false, false]), RoundOutcome::Silence);
        assert_eq!(ch.resolve_round(&[true, false]), RoundOutcome::Success);
        assert_eq!(ch.resolve_round(&[true, true]), RoundOutcome::Collision);
        assert_eq!(ch.rounds_elapsed(), 3);
        assert_eq!(ch.resolution_round(), Some(2));
        assert!(ch.resolved());
    }

    #[test]
    fn feedback_with_collision_detection_is_faithful() {
        let ch = Channel::new(ChannelMode::CollisionDetection);
        assert_eq!(
            ch.feedback_for(RoundOutcome::Collision, false),
            Feedback::CollisionDetected
        );
        assert_eq!(
            ch.feedback_for(RoundOutcome::Silence, false),
            Feedback::SilenceDetected
        );
        assert_eq!(
            ch.feedback_for(RoundOutcome::Success, true),
            Feedback::Resolved
        );
    }

    #[test]
    fn feedback_without_collision_detection_hides_collisions() {
        let ch = Channel::new(ChannelMode::NoCollisionDetection);
        assert_eq!(
            ch.feedback_for(RoundOutcome::Collision, true),
            Feedback::NothingHeard
        );
        assert_eq!(
            ch.feedback_for(RoundOutcome::Silence, false),
            Feedback::NothingHeard
        );
        assert_eq!(
            ch.feedback_for(RoundOutcome::Success, false),
            Feedback::Resolved
        );
    }

    #[test]
    fn reset_clears_history_but_keeps_mode() {
        let mut ch = Channel::new(ChannelMode::NoCollisionDetection);
        ch.resolve_round(&[true, true]);
        assert_eq!(ch.rounds_elapsed(), 1);
        ch.reset();
        assert_eq!(ch.rounds_elapsed(), 0);
        assert!(!ch.resolved());
        assert_eq!(ch.mode(), ChannelMode::NoCollisionDetection);
    }

    #[test]
    fn empty_decision_slice_is_silence() {
        let mut ch = Channel::new(ChannelMode::CollisionDetection);
        assert_eq!(ch.resolve_round(&[]), RoundOutcome::Silence);
    }

    #[test]
    fn mode_display_and_predicate() {
        assert!(ChannelMode::CollisionDetection.has_collision_detection());
        assert!(!ChannelMode::NoCollisionDetection.has_collision_detection());
        assert_eq!(
            ChannelMode::CollisionDetection.to_string(),
            "collision detection"
        );
    }
}
