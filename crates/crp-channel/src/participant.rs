//! Participants and participant sets.

use crate::error::ChannelError;

/// Identifier of a potential participant, i.e. an element of the universe
/// `V = {0, 1, …, n − 1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ParticipantId(pub usize);

impl ParticipantId {
    /// The raw index of this participant within the universe.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ParticipantId {
    fn from(value: usize) -> Self {
        ParticipantId(value)
    }
}

impl std::fmt::Display for ParticipantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The set `P ⊆ V` of participants activated for one execution.
///
/// Stored as a sorted, de-duplicated list of ids so that iteration order is
/// deterministic and membership checks are `O(log |P|)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParticipantSet {
    universe_size: usize,
    members: Vec<ParticipantId>,
}

impl ParticipantSet {
    /// Builds a participant set from explicit member ids within a universe
    /// of `universe_size` potential participants.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::EmptyParticipantSet`] if `members` is empty
    /// and [`ChannelError::TooManyParticipants`] if any id is outside the
    /// universe.
    pub fn new(
        universe_size: usize,
        mut members: Vec<ParticipantId>,
    ) -> Result<Self, ChannelError> {
        if members.is_empty() {
            return Err(ChannelError::EmptyParticipantSet);
        }
        members.sort_unstable();
        members.dedup();
        if let Some(max) = members.last() {
            if max.index() >= universe_size {
                return Err(ChannelError::TooManyParticipants {
                    requested: max.index() + 1,
                    universe: universe_size,
                });
            }
        }
        Ok(Self {
            universe_size,
            members,
        })
    }

    /// Builds the participant set `{0, 1, …, size − 1}`: the first `size`
    /// ids of the universe.  Convenient for uniform algorithms, whose
    /// behaviour does not depend on identities.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::EmptyParticipantSet`] if `size == 0` and
    /// [`ChannelError::TooManyParticipants`] if `size > universe_size`.
    pub fn first_k(universe_size: usize, size: usize) -> Result<Self, ChannelError> {
        if size == 0 {
            return Err(ChannelError::EmptyParticipantSet);
        }
        if size > universe_size {
            return Err(ChannelError::TooManyParticipants {
                requested: size,
                universe: universe_size,
            });
        }
        Ok(Self {
            universe_size,
            members: (0..size).map(ParticipantId).collect(),
        })
    }

    /// Number of participants `k = |P|`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the set is empty (never the case for validated sets).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Size of the universe `n = |V|`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The member ids in ascending order.
    pub fn members(&self) -> &[ParticipantId] {
        &self.members
    }

    /// True if `id` participates in this execution.
    pub fn contains(&self, id: ParticipantId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Iterates over the member ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ParticipantId> + '_ {
        self.members.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let set = ParticipantSet::new(
            10,
            vec![ParticipantId(5), ParticipantId(1), ParticipantId(5)],
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.members(), &[ParticipantId(1), ParticipantId(5)]);
    }

    #[test]
    fn new_rejects_empty_and_out_of_universe() {
        assert_eq!(
            ParticipantSet::new(10, vec![]),
            Err(ChannelError::EmptyParticipantSet)
        );
        assert!(matches!(
            ParticipantSet::new(4, vec![ParticipantId(4)]),
            Err(ChannelError::TooManyParticipants { .. })
        ));
    }

    #[test]
    fn first_k_builds_prefix() {
        let set = ParticipantSet::first_k(100, 3).unwrap();
        assert_eq!(set.len(), 3);
        assert!(set.contains(ParticipantId(0)));
        assert!(set.contains(ParticipantId(2)));
        assert!(!set.contains(ParticipantId(3)));
        assert_eq!(set.universe_size(), 100);
    }

    #[test]
    fn first_k_validates_bounds() {
        assert!(ParticipantSet::first_k(10, 0).is_err());
        assert!(ParticipantSet::first_k(10, 11).is_err());
        assert!(ParticipantSet::first_k(10, 10).is_ok());
    }

    #[test]
    fn membership_and_iteration_agree() {
        let set = ParticipantSet::new(
            32,
            vec![ParticipantId(3), ParticipantId(17), ParticipantId(31)],
        )
        .unwrap();
        let collected: Vec<_> = set.iter().collect();
        assert_eq!(collected.len(), set.len());
        for id in collected {
            assert!(set.contains(id));
        }
        assert!(!set.contains(ParticipantId(4)));
    }

    #[test]
    fn participant_id_display_and_conversion() {
        let id: ParticipantId = 7usize.into();
        assert_eq!(id.to_string(), "p7");
        assert_eq!(id.index(), 7);
    }
}
