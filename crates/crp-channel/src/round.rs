//! Per-round channel outcomes and the feedback observed by participants.

/// The ground-truth result of a single synchronous round on the shared
/// channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundOutcome {
    /// No participant transmitted.
    Silence,
    /// Exactly one participant transmitted — contention is resolved.
    Success,
    /// Two or more participants transmitted; all messages were lost.
    Collision,
}

impl RoundOutcome {
    /// Classifies a round from the number of simultaneous transmitters.
    pub fn from_transmitter_count(count: usize) -> Self {
        match count {
            0 => RoundOutcome::Silence,
            1 => RoundOutcome::Success,
            _ => RoundOutcome::Collision,
        }
    }

    /// True if this outcome solves contention resolution.
    pub fn is_success(self) -> bool {
        matches!(self, RoundOutcome::Success)
    }
}

impl std::fmt::Display for RoundOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let label = match self {
            RoundOutcome::Silence => "silence",
            RoundOutcome::Success => "success",
            RoundOutcome::Collision => "collision",
        };
        write!(f, "{label}")
    }
}

/// What a single participant observes at the end of a round.
///
/// The observation depends on the channel mode and on whether the
/// participant itself transmitted:
///
/// * With collision detection, everyone (including transmitters) can tell a
///   collision apart from silence.
/// * Without collision detection, listeners cannot distinguish collision
///   from silence; they only ever see [`Feedback::NothingHeard`] unless the
///   round succeeded.  A node that transmitted alone knows it succeeded; the
///   paper's model announces success to everyone (the problem is defined to
///   end at that round), which we model as [`Feedback::Resolved`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Feedback {
    /// The round resolved contention (a single transmitter was heard).
    Resolved,
    /// Collision detection reported a collision.
    CollisionDetected,
    /// Collision detection reported silence (nobody transmitted).
    SilenceDetected,
    /// No collision detector: the participant heard nothing useful
    /// (the round was either silent or a collision).
    NothingHeard,
}

impl Feedback {
    /// True if this feedback tells the participant the problem is solved.
    pub fn is_resolved(self) -> bool {
        matches!(self, Feedback::Resolved)
    }

    /// Collapses the feedback to the single "collision history" bit used by
    /// uniform collision-detection algorithms: `true` for a detected
    /// collision, `false` for detected silence.
    ///
    /// Returns `None` for feedback kinds that do not correspond to a history
    /// bit (resolution, or the no-detection "nothing heard" observation).
    pub fn as_collision_bit(self) -> Option<bool> {
        match self {
            Feedback::CollisionDetected => Some(true),
            Feedback::SilenceDetected => Some(false),
            Feedback::Resolved | Feedback::NothingHeard => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_from_count_matches_model() {
        assert_eq!(
            RoundOutcome::from_transmitter_count(0),
            RoundOutcome::Silence
        );
        assert_eq!(
            RoundOutcome::from_transmitter_count(1),
            RoundOutcome::Success
        );
        assert_eq!(
            RoundOutcome::from_transmitter_count(2),
            RoundOutcome::Collision
        );
        assert_eq!(
            RoundOutcome::from_transmitter_count(100),
            RoundOutcome::Collision
        );
    }

    #[test]
    fn only_success_is_success() {
        assert!(RoundOutcome::Success.is_success());
        assert!(!RoundOutcome::Silence.is_success());
        assert!(!RoundOutcome::Collision.is_success());
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(RoundOutcome::Silence.to_string(), "silence");
        assert_eq!(RoundOutcome::Success.to_string(), "success");
        assert_eq!(RoundOutcome::Collision.to_string(), "collision");
    }

    #[test]
    fn feedback_collision_bits() {
        assert_eq!(Feedback::CollisionDetected.as_collision_bit(), Some(true));
        assert_eq!(Feedback::SilenceDetected.as_collision_bit(), Some(false));
        assert_eq!(Feedback::Resolved.as_collision_bit(), None);
        assert_eq!(Feedback::NothingHeard.as_collision_bit(), None);
    }

    #[test]
    fn only_resolved_feedback_resolves() {
        assert!(Feedback::Resolved.is_resolved());
        assert!(!Feedback::CollisionDetected.is_resolved());
        assert!(!Feedback::SilenceDetected.is_resolved());
        assert!(!Feedback::NothingHeard.is_resolved());
    }
}
