//! Collision histories.
//!
//! In the collision-detection model, a uniform algorithm is a function from
//! the history of collisions/silences observed so far to the next broadcast
//! probability (paper §2.1).  The paper encodes a history of `r` rounds as a
//! bit string `b₁b₂…b_r` with `b_i = 1` when round `i` was a collision.
//! [`CollisionHistory`] is that bit string.

use crate::round::Feedback;

/// The collision/silence history observed by all participants under
/// collision detection, as a bit string (`true` = collision).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CollisionHistory {
    bits: Vec<bool>,
}

impl CollisionHistory {
    /// The empty history (before the first round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a history from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Builds a history from an ASCII string of `'0'`/`'1'` characters.
    ///
    /// # Panics
    ///
    /// Panics if the string contains characters other than `'0'` and `'1'`.
    pub fn from_str_bits(s: &str) -> Self {
        let bits = s
            .chars()
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("history strings may only contain 0 and 1, found {other:?}"),
            })
            .collect();
        Self { bits }
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True before any round has been recorded.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The raw bits, oldest round first.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Appends one round's observation: `true` for collision, `false` for
    /// silence.
    pub fn push(&mut self, collision: bool) {
        self.bits.push(collision);
    }

    /// Appends the observation encoded by a [`Feedback`], if it carries a
    /// collision bit.  Feedback kinds without a history bit (resolution, or
    /// the no-detection observation) leave the history unchanged and return
    /// `false`.
    pub fn push_feedback(&mut self, feedback: Feedback) -> bool {
        match feedback.as_collision_bit() {
            Some(bit) => {
                self.bits.push(bit);
                true
            }
            None => false,
        }
    }

    /// Renders the history as a `0`/`1` string (oldest round first).
    pub fn to_bit_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &CollisionHistory) -> bool {
        self.bits.len() <= other.bits.len() && other.bits[..self.bits.len()] == self.bits[..]
    }

    /// Returns a copy of this history extended with `collision`.
    pub fn child(&self, collision: bool) -> CollisionHistory {
        let mut bits = self.bits.clone();
        bits.push(collision);
        CollisionHistory { bits }
    }
}

impl std::fmt::Display for CollisionHistory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.bits.is_empty() {
            write!(f, "ε")
        } else {
            write!(f, "{}", self.to_bit_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_render() {
        let mut h = CollisionHistory::new();
        assert!(h.is_empty());
        h.push(true);
        h.push(false);
        h.push(true);
        assert_eq!(h.len(), 3);
        assert_eq!(h.to_bit_string(), "101");
        assert_eq!(h.to_string(), "101");
    }

    #[test]
    fn empty_history_displays_epsilon() {
        assert_eq!(CollisionHistory::new().to_string(), "ε");
    }

    #[test]
    fn from_str_round_trips() {
        let h = CollisionHistory::from_str_bits("0110");
        assert_eq!(h.bits(), &[false, true, true, false]);
        assert_eq!(h.to_bit_string(), "0110");
    }

    #[test]
    fn push_feedback_only_records_detection_bits() {
        let mut h = CollisionHistory::new();
        assert!(h.push_feedback(Feedback::CollisionDetected));
        assert!(h.push_feedback(Feedback::SilenceDetected));
        assert!(!h.push_feedback(Feedback::Resolved));
        assert!(!h.push_feedback(Feedback::NothingHeard));
        assert_eq!(h.to_bit_string(), "10");
    }

    #[test]
    fn prefix_relation_and_child() {
        let parent = CollisionHistory::from_str_bits("01");
        let child = parent.child(true);
        assert_eq!(child.to_bit_string(), "011");
        assert!(parent.is_prefix_of(&child));
        assert!(!child.is_prefix_of(&parent));
        assert!(parent.is_prefix_of(&parent));
    }

    #[test]
    #[should_panic(expected = "only contain 0 and 1")]
    fn from_str_rejects_other_characters() {
        let _ = CollisionHistory::from_str_bits("01x");
    }
}
