//! Execution traces.
//!
//! The executor records what happened in every round so that tests, the
//! experiment harness and the examples can inspect executions (e.g. verify
//! that a protocol's transmission probabilities followed its schedule, or
//! debug why a run took unusually long).

use crate::round::RoundOutcome;

/// Everything recorded about one round of an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Number of participants that transmitted.
    pub transmitters: usize,
    /// Ground-truth channel outcome.
    pub outcome: RoundOutcome,
}

/// A full execution trace: the per-round records plus the final verdict.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    records: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one round's record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All per-round records in order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The 1-based round at which contention was resolved, if any.
    pub fn resolution_round(&self) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.outcome.is_success())
            .map(|r| r.round)
    }

    /// Number of collision rounds in the trace.
    pub fn collisions(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == RoundOutcome::Collision)
            .count()
    }

    /// Number of silent rounds in the trace.
    pub fn silences(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome == RoundOutcome::Silence)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, transmitters: usize) -> RoundRecord {
        RoundRecord {
            round,
            transmitters,
            outcome: RoundOutcome::from_transmitter_count(transmitters),
        }
    }

    #[test]
    fn trace_accumulates_records() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.push(record(1, 3));
        trace.push(record(2, 0));
        trace.push(record(3, 1));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.resolution_round(), Some(3));
        assert_eq!(trace.collisions(), 1);
        assert_eq!(trace.silences(), 1);
    }

    #[test]
    fn unresolved_trace_has_no_resolution_round() {
        let mut trace = Trace::new();
        trace.push(record(1, 2));
        trace.push(record(2, 5));
        assert_eq!(trace.resolution_round(), None);
        assert_eq!(trace.collisions(), 2);
    }

    #[test]
    fn records_are_accessible_in_order() {
        let mut trace = Trace::new();
        trace.push(record(1, 0));
        trace.push(record(2, 1));
        let rounds: Vec<usize> = trace.records().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![1, 2]);
    }
}
