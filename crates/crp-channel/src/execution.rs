//! Driving protocols against the channel.
//!
//! Two executors are provided:
//!
//! * [`execute`] drives arbitrary *per-node* protocols (each participant is
//!   its own [`NodeProtocol`] object making independent decisions).  Needed
//!   for the deterministic advice-based algorithms of §3, where behaviour
//!   depends on participant identity.
//! * [`execute_uniform_schedule`] drives *uniform* protocols, in which all
//!   participants share the same per-round transmission probability (the
//!   class of algorithms the paper's §2 analyses).  For uniform protocols
//!   only the number of transmitters matters, and its distribution is
//!   `Binomial(k, p)`; the executor therefore samples the round outcome
//!   category directly from the exact probabilities
//!   `Pr[silence] = (1−p)^k`, `Pr[success] = k·p·(1−p)^{k−1}` — `O(1)` work
//!   per round regardless of `k`, which keeps the Monte-Carlo harness fast
//!   at `n = 2^20`.

use rand::Rng;
use rand::RngCore;

use crate::channel::{Channel, ChannelMode};
use crate::error::ChannelError;
use crate::history::CollisionHistory;
use crate::round::{Feedback, RoundOutcome};
use crate::trace::{RoundRecord, Trace};

/// A per-node contention-resolution protocol instance.
///
/// One object is created per participant per execution.  The executor calls
/// [`NodeProtocol::decide`] each round to learn whether the node transmits,
/// then [`NodeProtocol::observe`] with the feedback the node would hear on
/// the channel.
pub trait NodeProtocol {
    /// Whether this node transmits in the given (1-based) round.
    fn decide(&mut self, round: usize, rng: &mut dyn RngCore) -> bool;

    /// Observe the feedback for the round that just completed.
    fn observe(&mut self, round: usize, feedback: Feedback);

    /// True if the node has exhausted its schedule and will never transmit
    /// again (used to terminate one-shot executions early).  Defaults to
    /// `false`, i.e. the protocol runs until the round cap.
    fn finished(&self) -> bool {
        false
    }
}

impl<T: NodeProtocol + ?Sized> NodeProtocol for Box<T> {
    fn decide(&mut self, round: usize, rng: &mut dyn RngCore) -> bool {
        (**self).decide(round, rng)
    }
    fn observe(&mut self, round: usize, feedback: Feedback) {
        (**self).observe(round, feedback)
    }
    fn finished(&self) -> bool {
        (**self).finished()
    }
}

/// Configuration of a single execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Channel detection mode.
    pub mode: ChannelMode,
    /// Hard cap on the number of rounds simulated.
    pub max_rounds: usize,
    /// Whether to record a full per-round [`Trace`] (slower, but useful for
    /// tests and examples).
    pub record_trace: bool,
}

impl ExecutionConfig {
    /// Convenience constructor with trace recording disabled.
    pub fn new(mode: ChannelMode, max_rounds: usize) -> Self {
        Self {
            mode,
            max_rounds,
            record_trace: false,
        }
    }

    /// Returns a copy with trace recording enabled.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// Result of driving a protocol against the channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// True if some round had exactly one transmitter.
    pub resolved: bool,
    /// Number of rounds that elapsed (the resolving round included).
    pub rounds: usize,
    /// Per-round trace (empty unless `record_trace` was set).
    pub trace: Trace,
}

impl Execution {
    /// The 1-based round of resolution, or `None` if unresolved.
    pub fn resolution_round(&self) -> Option<usize> {
        if self.resolved {
            Some(self.rounds)
        } else {
            None
        }
    }
}

/// Drives one per-node protocol object per participant until contention is
/// resolved, every node reports [`NodeProtocol::finished`], or the round cap
/// is reached.
///
/// `nodes[i]` is the protocol instance of the `i`-th participant.  The
/// participant count is `nodes.len()`.
///
/// # Panics
///
/// Panics if `nodes` is empty or `config.max_rounds == 0`.  Library code
/// that wants an `Err` instead should call [`try_execute`].
pub fn execute<P: NodeProtocol, R: Rng>(
    nodes: &mut [P],
    config: &ExecutionConfig,
    rng: &mut R,
) -> Execution {
    try_execute(nodes, config, rng).expect("execution configuration is valid")
}

/// Fallible variant of [`execute`]: returns a typed error instead of
/// panicking on an empty node list or a zero round cap.
///
/// # Errors
///
/// Returns [`ChannelError::InvalidConfiguration`] if `nodes` is empty or
/// `config.max_rounds == 0`.
pub fn try_execute<P: NodeProtocol, R: Rng>(
    nodes: &mut [P],
    config: &ExecutionConfig,
    rng: &mut R,
) -> Result<Execution, ChannelError> {
    if nodes.is_empty() {
        return Err(ChannelError::InvalidConfiguration {
            what: "execution requires at least one participant".into(),
        });
    }
    if config.max_rounds == 0 {
        return Err(ChannelError::InvalidConfiguration {
            what: "execution requires a positive round cap".into(),
        });
    }

    let mut channel = Channel::new(config.mode);
    let mut trace = Trace::new();
    let mut decisions = vec![false; nodes.len()];

    for round in 1..=config.max_rounds {
        for (node, decision) in nodes.iter_mut().zip(decisions.iter_mut()) {
            *decision = node.decide(round, rng);
        }
        let outcome = channel.resolve_round(&decisions);
        if config.record_trace {
            trace.push(RoundRecord {
                round,
                transmitters: decisions.iter().filter(|&&d| d).count(),
                outcome,
            });
        }
        if outcome.is_success() {
            return Ok(Execution {
                resolved: true,
                rounds: round,
                trace,
            });
        }
        for (node, &decision) in nodes.iter_mut().zip(decisions.iter()) {
            let feedback = channel.feedback_for(outcome, decision);
            node.observe(round, feedback);
        }
        if nodes.iter().all(|n| n.finished()) {
            return Ok(Execution {
                resolved: false,
                rounds: round,
                trace,
            });
        }
    }
    Ok(Execution {
        resolved: false,
        rounds: config.max_rounds,
        trace,
    })
}

/// Drives a *uniform* protocol: all `k` participants transmit with the same
/// probability each round, supplied by `probability_for_round`.
///
/// The closure receives the 1-based round number and the collision history
/// observed so far (always empty in
/// [`ChannelMode::NoCollisionDetection`] mode, because listeners learn
/// nothing there) and returns the transmission probability for that round,
/// or `None` if the schedule is exhausted (one-shot protocols).
///
/// The executor samples the round outcome category directly from the exact
/// binomial probabilities, so the cost per round is independent of `k`.
///
/// # Panics
///
/// Panics if `k == 0`, `config.max_rounds == 0`, or a returned probability
/// is outside `[0, 1]`.
#[deprecated(
    since = "0.2.0",
    note = "use try_execute_uniform_schedule (or the crp-sim Simulation builder), which returns \
            a typed error instead of panicking"
)]
pub fn execute_uniform_schedule<F, R>(
    k: usize,
    probability_for_round: F,
    config: &ExecutionConfig,
    rng: &mut R,
) -> Execution
where
    F: FnMut(usize, &CollisionHistory) -> Option<f64>,
    R: Rng + ?Sized,
{
    try_execute_uniform_schedule(k, probability_for_round, config, rng)
        .expect("execution configuration is valid")
}

/// Fallible variant of the uniform executor: returns a typed error instead
/// of panicking on invalid configurations.
///
/// # Errors
///
/// Returns [`ChannelError::InvalidConfiguration`] if `k == 0`,
/// `config.max_rounds == 0`, or the protocol produces a probability
/// outside `[0, 1]`.
pub fn try_execute_uniform_schedule<F, R>(
    k: usize,
    mut probability_for_round: F,
    config: &ExecutionConfig,
    rng: &mut R,
) -> Result<Execution, ChannelError>
where
    F: FnMut(usize, &CollisionHistory) -> Option<f64>,
    R: Rng + ?Sized,
{
    if k == 0 {
        return Err(ChannelError::InvalidConfiguration {
            what: "uniform execution requires at least one participant".into(),
        });
    }
    if config.max_rounds == 0 {
        return Err(ChannelError::InvalidConfiguration {
            what: "execution requires a positive round cap".into(),
        });
    }

    let mut history = CollisionHistory::new();
    let mut trace = Trace::new();

    for round in 1..=config.max_rounds {
        let Some(p) = probability_for_round(round, &history) else {
            return Ok(Execution {
                resolved: false,
                rounds: round - 1,
                trace,
            });
        };
        if !(0.0..=1.0).contains(&p) {
            return Err(ChannelError::InvalidConfiguration {
                what: format!("transmission probability {p} outside [0, 1] in round {round}"),
            });
        }
        let outcome = sample_uniform_outcome(k, p, rng);
        if config.record_trace {
            // Transmitter counts other than 0/1 are not reconstructed when
            // sampling the category directly; record 2 as "a collision".
            let transmitters = match outcome {
                RoundOutcome::Silence => 0,
                RoundOutcome::Success => 1,
                RoundOutcome::Collision => 2,
            };
            trace.push(RoundRecord {
                round,
                transmitters,
                outcome,
            });
        }
        if outcome.is_success() {
            return Ok(Execution {
                resolved: true,
                rounds: round,
                trace,
            });
        }
        if config.mode.has_collision_detection() {
            history.push(outcome == RoundOutcome::Collision);
        }
    }
    Ok(Execution {
        resolved: false,
        rounds: config.max_rounds,
        trace,
    })
}

/// The exact outcome-category probabilities of a round in which `k`
/// participants each transmit independently with probability `p ∈ (0, 1)`:
/// `(Pr[silence], Pr[success]) = ((1−p)^k, k·p·(1−p)^{k−1})`.
///
/// A uniform draw `u ∈ [0, 1)` classifies as silence when
/// `u < Pr[silence]`, success when `u < Pr[silence] + Pr[success]`, and
/// collision otherwise — see [`classify_uniform_draw`].  Exposed so batched
/// trial kernels can precompute and memoize the thresholds once per
/// `(p, k)` pair instead of paying the two `powf` calls every round; the
/// edge cases `p ≤ 0` (always silence, **no draw consumed**) and `p ≥ 1`
/// ([`RoundOutcome::from_transmitter_count`], **no draw consumed**) must be
/// handled before calling this.
pub fn uniform_outcome_thresholds(k: usize, p: f64) -> (f64, f64) {
    let kf = k as f64;
    let p_silence = (1.0 - p).powf(kf);
    let p_success = kf * p * (1.0 - p).powf(kf - 1.0);
    (p_silence, p_success)
}

/// Classifies one uniform draw against [`uniform_outcome_thresholds`].
///
/// The comparison chain is exactly the one [`sample_uniform_outcome`]
/// applies, so a kernel that draws `u` from the same RNG stream position
/// reproduces the scalar executor's outcome bit for bit.
pub fn classify_uniform_draw(u: f64, p_silence: f64, p_success: f64) -> RoundOutcome {
    // Branchless: category = (u ≥ s) + (u ≥ s + c) ∈ {0, 1, 2}.
    let category = u8::from(u >= p_silence) + u8::from(u >= p_silence + p_success);
    match category {
        0 => RoundOutcome::Silence,
        1 => RoundOutcome::Success,
        _ => RoundOutcome::Collision,
    }
}

/// Samples the outcome category of a round in which `k` participants each
/// transmit independently with probability `p`.
///
/// Consumes exactly one `f64` draw for `p ∈ (0, 1)` and none otherwise —
/// the draw discipline batched kernels rely on.
pub fn sample_uniform_outcome<R: Rng + ?Sized>(k: usize, p: f64, rng: &mut R) -> RoundOutcome {
    if p <= 0.0 {
        return RoundOutcome::Silence;
    }
    if p >= 1.0 {
        return RoundOutcome::from_transmitter_count(k);
    }
    let (p_silence, p_success) = uniform_outcome_thresholds(k, p);
    let u: f64 = rng.gen();
    classify_uniform_draw(u, p_silence, p_success)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A per-node protocol that transmits with a fixed probability forever.
    struct FixedProbability {
        p: f64,
    }

    impl NodeProtocol for FixedProbability {
        fn decide(&mut self, _round: usize, rng: &mut dyn RngCore) -> bool {
            rng.gen_bool(self.p)
        }
        fn observe(&mut self, _round: usize, _feedback: Feedback) {}
    }

    /// A node that transmits exactly in one designated round.
    struct TransmitOnce {
        round: usize,
        done: bool,
    }

    impl NodeProtocol for TransmitOnce {
        fn decide(&mut self, round: usize, _rng: &mut dyn RngCore) -> bool {
            round == self.round
        }
        fn observe(&mut self, round: usize, _feedback: Feedback) {
            if round >= self.round {
                self.done = true;
            }
        }
        fn finished(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn single_node_with_probability_one_resolves_immediately() {
        let mut nodes = vec![FixedProbability { p: 1.0 }];
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let result = execute(&mut nodes, &config, &mut rng);
        assert!(result.resolved);
        assert_eq!(result.rounds, 1);
        assert_eq!(result.resolution_round(), Some(1));
    }

    #[test]
    fn two_always_transmitting_nodes_never_resolve() {
        let mut nodes = vec![FixedProbability { p: 1.0 }, FixedProbability { p: 1.0 }];
        let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 25).with_trace();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let result = execute(&mut nodes, &config, &mut rng);
        assert!(!result.resolved);
        assert_eq!(result.rounds, 25);
        assert_eq!(result.trace.collisions(), 25);
        assert_eq!(result.resolution_round(), None);
    }

    #[test]
    fn distinct_transmit_rounds_resolve_at_the_earliest() {
        let mut nodes = vec![
            TransmitOnce {
                round: 3,
                done: false,
            },
            TransmitOnce {
                round: 5,
                done: false,
            },
        ];
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 10).with_trace();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let result = execute(&mut nodes, &config, &mut rng);
        assert!(result.resolved);
        assert_eq!(result.rounds, 3);
        assert_eq!(result.trace.silences(), 2);
    }

    #[test]
    fn execution_stops_when_all_nodes_finish() {
        let mut nodes = vec![
            TransmitOnce {
                round: 2,
                done: false,
            },
            TransmitOnce {
                round: 2,
                done: false,
            },
        ];
        let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 100);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let result = execute(&mut nodes, &config, &mut rng);
        // Both collide in round 2, then both are finished: no point running on.
        assert!(!result.resolved);
        assert_eq!(result.rounds, 2);
    }

    #[test]
    fn uniform_schedule_with_ideal_probability_resolves_quickly() {
        let k = 64;
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 200);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut total_rounds = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let result =
                try_execute_uniform_schedule(k, |_, _| Some(1.0 / k as f64), &config, &mut rng)
                    .unwrap();
            assert!(
                result.resolved,
                "1/k schedule should always resolve quickly"
            );
            total_rounds += result.rounds;
        }
        let mean = total_rounds as f64 / trials as f64;
        // With p = 1/k the per-round success probability is ~1/e, so the
        // expectation is ~e ≈ 2.7 rounds.
        assert!(mean > 1.5 && mean < 5.0, "mean rounds {mean} out of range");
    }

    #[test]
    fn uniform_schedule_exhaustion_ends_execution() {
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 100);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let result = try_execute_uniform_schedule(
            8,
            |round, _| if round <= 3 { Some(0.0) } else { None },
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(!result.resolved);
        assert_eq!(result.rounds, 3);
    }

    #[test]
    fn uniform_schedule_sees_collision_history_with_detection() {
        let config = ExecutionConfig::new(ChannelMode::CollisionDetection, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut observed_lengths = Vec::new();
        let _ = try_execute_uniform_schedule(
            4,
            |round, history| {
                observed_lengths.push(history.len());
                // Everyone transmits: guaranteed collisions, never resolves.
                let _ = round;
                Some(1.0)
            },
            &config,
            &mut rng,
        )
        .unwrap();
        // History grows by one collision bit every round.
        assert_eq!(observed_lengths, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_schedule_hides_history_without_detection() {
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let _ = try_execute_uniform_schedule(
            4,
            |_, history| {
                assert!(history.is_empty(), "no-CD schedules must not see history");
                Some(1.0)
            },
            &config,
            &mut rng,
        )
        .unwrap();
    }

    #[test]
    fn sample_uniform_outcome_edge_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        assert_eq!(
            sample_uniform_outcome(5, 0.0, &mut rng),
            RoundOutcome::Silence
        );
        assert_eq!(
            sample_uniform_outcome(5, 1.0, &mut rng),
            RoundOutcome::Collision
        );
        assert_eq!(
            sample_uniform_outcome(1, 1.0, &mut rng),
            RoundOutcome::Success
        );
    }

    #[test]
    fn sample_uniform_outcome_statistics_match_binomial() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let k = 10;
        let p = 0.1;
        let trials = 20_000;
        let mut successes = 0;
        for _ in 0..trials {
            if sample_uniform_outcome(k, p, &mut rng) == RoundOutcome::Success {
                successes += 1;
            }
        }
        let expected = k as f64 * p * (1.0 - p).powi(k as i32 - 1);
        let observed = successes as f64 / trials as f64;
        assert!(
            (observed - expected).abs() < 0.02,
            "observed {observed}, expected {expected}"
        );
    }

    #[test]
    fn try_execute_rejects_empty_node_list() {
        let mut nodes: Vec<FixedProbability> = vec![];
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = try_execute(&mut nodes, &config, &mut rng).unwrap_err();
        assert!(err.to_string().contains("at least one participant"));
    }

    #[test]
    fn try_execute_rejects_zero_round_cap() {
        let mut nodes = vec![FixedProbability { p: 0.5 }];
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 0);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(try_execute(&mut nodes, &config, &mut rng).is_err());
    }

    #[test]
    fn try_uniform_schedule_rejects_bad_probability() {
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = try_execute_uniform_schedule(2, |_, _| Some(1.5), &config, &mut rng).unwrap_err();
        assert!(err.to_string().contains("outside [0, 1]"));
    }

    #[test]
    fn try_uniform_schedule_rejects_zero_participants_and_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 5);
        assert!(try_execute_uniform_schedule(0, |_, _| Some(0.5), &config, &mut rng).is_err());
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 0);
        assert!(try_execute_uniform_schedule(2, |_, _| Some(0.5), &config, &mut rng).is_err());
    }

    #[test]
    #[allow(deprecated)]
    #[should_panic(expected = "outside [0, 1]")]
    fn deprecated_uniform_shim_still_panics() {
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = execute_uniform_schedule(2, |_, _| Some(1.5), &config, &mut rng);
    }
}
