//! Error type for the channel simulator.

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or driving the channel simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A participant set was requested with zero participants; the problem
    /// is defined only for non-empty participant sets.
    EmptyParticipantSet,
    /// A participant set was requested with more participants than the
    /// universe contains.
    TooManyParticipants {
        /// Requested number of participants.
        requested: usize,
        /// Size of the universe `|V| = n`.
        universe: usize,
    },
    /// An execution exceeded its configured round cap without resolving
    /// contention.
    RoundLimitExceeded {
        /// The configured cap that was hit.
        limit: usize,
    },
    /// A protocol was driven with a participant count it cannot handle
    /// (for example zero participants).
    InvalidConfiguration {
        /// Human-readable description of the problem.
        what: String,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::EmptyParticipantSet => {
                write!(f, "participant set must be non-empty")
            }
            ChannelError::TooManyParticipants {
                requested,
                universe,
            } => write!(
                f,
                "requested {requested} participants from a universe of {universe}"
            ),
            ChannelError::RoundLimitExceeded { limit } => {
                write!(f, "execution exceeded the round limit of {limit}")
            }
            ChannelError::InvalidConfiguration { what } => {
                write!(f, "invalid execution configuration: {what}")
            }
        }
    }
}

impl Error for ChannelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ChannelError::EmptyParticipantSet
            .to_string()
            .contains("non-empty"));
        assert!(ChannelError::TooManyParticipants {
            requested: 10,
            universe: 5
        }
        .to_string()
        .contains("10"));
        assert!(ChannelError::RoundLimitExceeded { limit: 64 }
            .to_string()
            .contains("64"));
        assert!(ChannelError::InvalidConfiguration {
            what: "zero rounds".into()
        }
        .to_string()
        .contains("zero rounds"));
    }
}
