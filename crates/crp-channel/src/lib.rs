//! Multiple-access channel simulator for the *Contention Resolution with
//! Predictions* reproduction.
//!
//! The paper's model: an unknown, non-empty subset `P ⊆ V` of `|V| = n`
//! possible participants is activated and connected to a shared channel.
//! Time proceeds in synchronous rounds.  In each round every participant
//! either transmits or listens.  If exactly one participant transmits, the
//! problem is solved.  If two or more transmit, all messages are lost; with
//! *collision detection* every participant learns that a collision happened,
//! without collision detection colliding rounds are indistinguishable from
//! silent rounds for listeners.
//!
//! This crate implements that model exactly as a discrete-event simulator:
//!
//! * [`RoundOutcome`] / [`Feedback`] — the channel's per-round result and
//!   what each participant observes under either detection assumption.
//! * [`Channel`] — the slotted channel itself, parameterised by
//!   [`ChannelMode`].
//! * [`ParticipantSet`] and [`Adversary`] — who participates; the adversary
//!   picks *which* ids participate once the size has been drawn from the
//!   prediction distribution (for uniform algorithms the identities are
//!   irrelevant, but full per-node protocols see real ids).
//! * [`Execution`] / [`execute`] — drives a per-node protocol against the
//!   channel until contention is resolved (or a round cap is hit) and
//!   records a [`Trace`].
//!
//! # Example
//!
//! ```
//! use crp_channel::{Channel, ChannelMode, RoundOutcome};
//!
//! let mut channel = Channel::new(ChannelMode::CollisionDetection);
//! // Two participants transmit in the same round: a collision.
//! let outcome = channel.resolve_round(&[true, true, false]);
//! assert_eq!(outcome, RoundOutcome::Collision);
//! assert_eq!(channel.rounds_elapsed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod channel;
mod error;
mod execution;
mod history;
mod participant;
mod round;
mod trace;

pub use adversary::{Adversary, AdversaryStrategy};
pub use channel::{Channel, ChannelMode};
pub use error::ChannelError;
#[allow(deprecated)]
pub use execution::execute_uniform_schedule;
pub use execution::{
    classify_uniform_draw, execute, sample_uniform_outcome, try_execute,
    try_execute_uniform_schedule, uniform_outcome_thresholds, Execution, ExecutionConfig,
    NodeProtocol,
};
pub use history::CollisionHistory;
pub use participant::{ParticipantId, ParticipantSet};
pub use round::{Feedback, RoundOutcome};
pub use trace::{RoundRecord, Trace};
