//! The adversary: choosing *which* nodes participate.
//!
//! In the paper's model the size `k` of the participant set is drawn from
//! the random variable `X`, but the adversary still chooses *which* `k`
//! nodes participate.  For uniform algorithms this choice is irrelevant
//! (behaviour depends only on the shared probability schedule), but the
//! advice-based protocols of §3 are per-node algorithms for which the
//! identity of participants matters, so the executor lets an [`Adversary`]
//! select the set.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::error::ChannelError;
use crate::participant::{ParticipantId, ParticipantSet};

/// Strategies for choosing the identities of the `k` participants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryStrategy {
    /// Always pick the first `k` ids `{0, …, k−1}`.
    FirstK,
    /// Always pick the last `k` ids `{n−k, …, n−1}` — adversarial for
    /// protocols that scan ids in ascending order.
    LastK,
    /// Pick `k` ids uniformly at random.
    UniformRandom,
    /// Pick `k` ids spread evenly across the universe (every `n/k`-th id),
    /// adversarial for advice schemes that prune contiguous blocks.
    Spread,
}

/// Chooses participant sets of a requested size from a universe of `n` ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adversary {
    universe_size: usize,
    strategy: AdversaryStrategy,
}

impl Adversary {
    /// Creates an adversary over a universe of `universe_size` ids.
    pub fn new(universe_size: usize, strategy: AdversaryStrategy) -> Self {
        Self {
            universe_size,
            strategy,
        }
    }

    /// The universe size `n`.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// The configured strategy.
    pub fn strategy(&self) -> AdversaryStrategy {
        self.strategy
    }

    /// Selects a participant set of exactly `size` members.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::EmptyParticipantSet`] if `size == 0` and
    /// [`ChannelError::TooManyParticipants`] if `size` exceeds the universe.
    pub fn select<R: Rng + ?Sized>(
        &self,
        size: usize,
        rng: &mut R,
    ) -> Result<ParticipantSet, ChannelError> {
        if size == 0 {
            return Err(ChannelError::EmptyParticipantSet);
        }
        if size > self.universe_size {
            return Err(ChannelError::TooManyParticipants {
                requested: size,
                universe: self.universe_size,
            });
        }
        let members: Vec<ParticipantId> = match self.strategy {
            AdversaryStrategy::FirstK => (0..size).map(ParticipantId).collect(),
            AdversaryStrategy::LastK => (self.universe_size - size..self.universe_size)
                .map(ParticipantId)
                .collect(),
            AdversaryStrategy::UniformRandom => {
                let mut ids: Vec<usize> = (0..self.universe_size).collect();
                ids.shuffle(rng);
                ids.truncate(size);
                ids.into_iter().map(ParticipantId).collect()
            }
            AdversaryStrategy::Spread => {
                let stride = self.universe_size as f64 / size as f64;
                (0..size)
                    .map(|i| {
                        ParticipantId(((i as f64 * stride) as usize).min(self.universe_size - 1))
                    })
                    .collect()
            }
        };
        ParticipantSet::new(self.universe_size, members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn first_k_and_last_k_pick_expected_ids() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first = Adversary::new(10, AdversaryStrategy::FirstK)
            .select(3, &mut rng)
            .unwrap();
        assert_eq!(
            first.members(),
            &[ParticipantId(0), ParticipantId(1), ParticipantId(2)]
        );
        let last = Adversary::new(10, AdversaryStrategy::LastK)
            .select(3, &mut rng)
            .unwrap();
        assert_eq!(
            last.members(),
            &[ParticipantId(7), ParticipantId(8), ParticipantId(9)]
        );
    }

    #[test]
    fn uniform_random_respects_size_and_universe() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let adv = Adversary::new(64, AdversaryStrategy::UniformRandom);
        for size in [1usize, 5, 32, 64] {
            let set = adv.select(size, &mut rng).unwrap();
            assert_eq!(set.len(), size);
            assert!(set.members().iter().all(|m| m.index() < 64));
        }
    }

    #[test]
    fn spread_selects_distinct_ids() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let adv = Adversary::new(100, AdversaryStrategy::Spread);
        let set = adv.select(10, &mut rng).unwrap();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn select_validates_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let adv = Adversary::new(8, AdversaryStrategy::FirstK);
        assert!(adv.select(0, &mut rng).is_err());
        assert!(adv.select(9, &mut rng).is_err());
        assert!(adv.select(8, &mut rng).is_ok());
    }

    #[test]
    fn accessors_report_configuration() {
        let adv = Adversary::new(16, AdversaryStrategy::Spread);
        assert_eq!(adv.universe_size(), 16);
        assert_eq!(adv.strategy(), AdversaryStrategy::Spread);
    }
}
