//! Property-style tests for the channel simulator, driven by deterministic
//! seeded sweeps (the environment has no `proptest`, so cases are
//! enumerated explicitly).

use crp_channel::{
    try_execute_uniform_schedule, Channel, ChannelMode, CollisionHistory, ExecutionConfig,
    Feedback, ParticipantSet, RoundOutcome,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn round_outcome_depends_only_on_transmitter_count() {
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    for case in 0..200 {
        let len = case % 64;
        let decisions: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        let mut channel = Channel::new(ChannelMode::CollisionDetection);
        let outcome = channel.resolve_round(&decisions);
        let count = decisions.iter().filter(|&&d| d).count();
        let expected = match count {
            0 => RoundOutcome::Silence,
            1 => RoundOutcome::Success,
            _ => RoundOutcome::Collision,
        };
        assert_eq!(outcome, expected);
    }
}

#[test]
fn feedback_is_consistent_with_mode() {
    for count in 0usize..20 {
        let outcome = RoundOutcome::from_transmitter_count(count);
        let cd = Channel::new(ChannelMode::CollisionDetection);
        let nocd = Channel::new(ChannelMode::NoCollisionDetection);
        let fb_cd = cd.feedback_for(outcome, false);
        let fb_nocd = nocd.feedback_for(outcome, false);
        match count {
            1 => {
                assert_eq!(fb_cd, Feedback::Resolved);
                assert_eq!(fb_nocd, Feedback::Resolved);
            }
            0 => {
                assert_eq!(fb_cd, Feedback::SilenceDetected);
                assert_eq!(fb_nocd, Feedback::NothingHeard);
            }
            _ => {
                assert_eq!(fb_cd, Feedback::CollisionDetected);
                assert_eq!(fb_nocd, Feedback::NothingHeard);
            }
        }
    }
}

#[test]
fn participant_set_len_is_bounded_by_universe() {
    for universe in [1usize, 2, 7, 64, 255] {
        for size in [1usize, 2, 7, 64, 255] {
            let result = ParticipantSet::first_k(universe, size);
            if size <= universe {
                let set = result.unwrap();
                assert_eq!(set.len(), size);
                assert!(set.members().iter().all(|m| m.index() < universe));
            } else {
                assert!(result.is_err());
            }
        }
    }
}

#[test]
fn uniform_execution_never_exceeds_round_cap() {
    let mut rng = ChaCha8Rng::seed_from_u64(202);
    for case in 0..300u64 {
        let k = 1 + (case as usize * 7) % 255;
        let cap = 1 + (case as usize * 13) % 63;
        let prob = (case as f64 / 300.0).clamp(0.0, 1.0);
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, cap);
        let result = try_execute_uniform_schedule(k, |_, _| Some(prob), &config, &mut rng).unwrap();
        assert!(result.rounds <= cap);
        if result.resolved {
            assert!(result.rounds >= 1);
        }
    }
}

#[test]
fn single_participant_with_positive_probability_eventually_succeeds() {
    for seed in 0u64..50 {
        let prob = 0.2 + 0.8 * (seed as f64 / 50.0);
        // With one participant, any transmission is a success.
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 2_000);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let result = try_execute_uniform_schedule(1, |_, _| Some(prob), &config, &mut rng).unwrap();
        assert!(result.resolved);
    }
}

#[test]
fn collision_history_prefix_property() {
    let mut rng = ChaCha8Rng::seed_from_u64(303);
    for case in 0..100 {
        let len = case % 32;
        let bits: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.5)).collect();
        let extra = rng.gen_bool(0.5);
        let history = CollisionHistory::from_bits(bits.clone());
        let child = history.child(extra);
        assert!(history.is_prefix_of(&child));
        assert_eq!(child.len(), history.len() + 1);
        assert_eq!(child.to_bit_string().len(), child.len());
    }
}
