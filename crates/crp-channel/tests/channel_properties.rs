//! Property-based tests for the channel simulator.

use crp_channel::{
    execute_uniform_schedule, Channel, ChannelMode, CollisionHistory, ExecutionConfig, Feedback,
    ParticipantSet, RoundOutcome,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn round_outcome_depends_only_on_transmitter_count(decisions in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut channel = Channel::new(ChannelMode::CollisionDetection);
        let outcome = channel.resolve_round(&decisions);
        let count = decisions.iter().filter(|&&d| d).count();
        let expected = match count {
            0 => RoundOutcome::Silence,
            1 => RoundOutcome::Success,
            _ => RoundOutcome::Collision,
        };
        prop_assert_eq!(outcome, expected);
    }

    #[test]
    fn feedback_is_consistent_with_mode(count in 0usize..20) {
        let outcome = RoundOutcome::from_transmitter_count(count);
        let cd = Channel::new(ChannelMode::CollisionDetection);
        let nocd = Channel::new(ChannelMode::NoCollisionDetection);
        let fb_cd = cd.feedback_for(outcome, false);
        let fb_nocd = nocd.feedback_for(outcome, false);
        match count {
            1 => {
                prop_assert_eq!(fb_cd, Feedback::Resolved);
                prop_assert_eq!(fb_nocd, Feedback::Resolved);
            }
            0 => {
                prop_assert_eq!(fb_cd, Feedback::SilenceDetected);
                prop_assert_eq!(fb_nocd, Feedback::NothingHeard);
            }
            _ => {
                prop_assert_eq!(fb_cd, Feedback::CollisionDetected);
                prop_assert_eq!(fb_nocd, Feedback::NothingHeard);
            }
        }
    }

    #[test]
    fn participant_set_len_is_bounded_by_universe(universe in 1usize..256, size in 1usize..256) {
        let result = ParticipantSet::first_k(universe, size);
        if size <= universe {
            let set = result.unwrap();
            prop_assert_eq!(set.len(), size);
            prop_assert!(set.members().iter().all(|m| m.index() < universe));
        } else {
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn uniform_execution_never_exceeds_round_cap(
        k in 1usize..256,
        cap in 1usize..64,
        prob in 0.0f64..=1.0,
        seed in 0u64..1_000,
    ) {
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, cap);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let result = execute_uniform_schedule(k, |_, _| Some(prob), &config, &mut rng);
        prop_assert!(result.rounds <= cap);
        if result.resolved {
            prop_assert!(result.rounds >= 1);
        }
    }

    #[test]
    fn single_participant_with_positive_probability_eventually_succeeds(
        prob in 0.2f64..=1.0,
        seed in 0u64..1_000,
    ) {
        // With one participant, any transmission is a success.
        let config = ExecutionConfig::new(ChannelMode::NoCollisionDetection, 2_000);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let result = execute_uniform_schedule(1, |_, _| Some(prob), &config, &mut rng);
        prop_assert!(result.resolved);
    }

    #[test]
    fn collision_history_prefix_property(bits in prop::collection::vec(any::<bool>(), 0..32), extra in any::<bool>()) {
        let history = CollisionHistory::from_bits(bits.clone());
        let child = history.child(extra);
        prop_assert!(history.is_prefix_of(&child));
        prop_assert_eq!(child.len(), history.len() + 1);
        prop_assert_eq!(child.to_bit_string().len(), child.len());
    }
}
