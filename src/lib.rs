//! # Contention Resolution with Predictions
//!
//! A full reproduction of *"Contention Resolution with Predictions"*
//! (Gilbert, Newport, Vaidya, Weaver — PODC 2021) as a Rust workspace:
//! the multiple-access channel model, the information-theoretic machinery
//! the paper's bounds are built on, the prediction-augmented and
//! perfect-advice protocols, and the Monte-Carlo harness that regenerates
//! the paper's result tables.
//!
//! This crate is a thin facade that re-exports the workspace crates under
//! stable module names:
//!
//! * [`info`] (`crp-info`) — size distributions, condensed distributions,
//!   entropy, KL divergence, Huffman / Shannon–Fano codes.
//! * [`channel`] (`crp-channel`) — the synchronous slotted channel, with
//!   and without collision detection, and the execution engine.
//! * [`predict`] (`crp-predict`) — scenario library, noise models, the
//!   learned histogram predictor and perfect-advice oracles.
//! * [`protocols`] (`crp-protocols`) — decay, Willard, the §2.5 / §2.6
//!   prediction-augmented algorithms, the §3 advice algorithms and the
//!   range-finding lower-bound machinery.
//! * [`sim`] (`crp-sim`) — the Monte-Carlo experiment harness.
//!
//! # Quickstart
//!
//! ```
//! use contention_predictions::info::SizeDistribution;
//! use contention_predictions::protocols::{run_schedule, SortedGuess};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A learned prediction: the network usually has ~64 active stations.
//! let prediction = SizeDistribution::bimodal(4096, 64, 2048, 0.9)?;
//! let protocol = SortedGuess::from_sizes(&prediction);
//!
//! // Tonight the network actually has 70 active stations.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let outcome = run_schedule(&protocol, 70, 1024, &mut rng);
//! assert!(outcome.resolved);
//! # Ok(())
//! # }
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Information-theory substrate (re-export of `crp-info`).
pub use crp_info as info;

/// Multiple-access channel simulator (re-export of `crp-channel`).
pub use crp_channel as channel;

/// Prediction substrate (re-export of `crp-predict`).
pub use crp_predict as predict;

/// Contention-resolution protocols (re-export of `crp-protocols`).
pub use crp_protocols as protocols;

/// Monte-Carlo experiment harness (re-export of `crp-sim`).
pub use crp_sim as sim;
