//! # Contention Resolution with Predictions
//!
//! A full reproduction of *"Contention Resolution with Predictions"*
//! (Gilbert, Newport, Vaidya, Weaver — PODC 2021) as a Rust workspace:
//! the multiple-access channel model, the information-theoretic machinery
//! the paper's bounds are built on, the prediction-augmented and
//! perfect-advice protocols, and the Monte-Carlo harness that regenerates
//! the paper's result tables.
//!
//! This crate is a thin facade that re-exports the workspace crates under
//! stable module names:
//!
//! * [`info`] (`crp-info`) — size distributions, condensed distributions,
//!   entropy, KL divergence, Huffman / Shannon–Fano codes.
//! * [`channel`] (`crp-channel`) — the synchronous slotted channel, with
//!   and without collision detection, and the execution engine.
//! * [`predict`] (`crp-predict`) — scenario library, noise models, the
//!   learned histogram predictor and perfect-advice oracles.
//! * [`protocols`] (`crp-protocols`) — decay, Willard, the §2.5 / §2.6
//!   prediction-augmented algorithms, the §3 advice algorithms, the
//!   range-finding lower-bound machinery, and the unified
//!   [`protocols::Protocol`] API with its name-based
//!   [`protocols::ProtocolRegistry`].
//! * [`fleet`] (`crp-fleet`) — fleet dispatch: the framed worker wire
//!   protocol (v2: capacity pipelining, scenario-by-hash blobs, ping
//!   health checks), long-lived stdio/TCP workers, and the
//!   straggler-retrying job dispatcher behind [`sim::FleetBackend`].
//! * [`serve`] (`crp-serve`) — the persistent sweep service: a
//!   warm-fleet daemon with a content-addressed result cache, fronted
//!   by `crp_experiments serve` / `submit`.
//! * [`sim`] (`crp-sim`) — the Monte-Carlo experiment harness, fronted by
//!   the builder-style [`sim::Simulation`].
//! * [`fuzz`] (`crp-fuzz`) — model-based scenario fuzzing: seeded
//!   adversarial trace models, property oracles encoding the paper's
//!   envelopes, a deterministic shrinker, declarative chaos plans, and
//!   the content-addressed reproducer corpus, fronted by
//!   `crp_experiments fuzz` / the `crp_fuzz` binary.
//!
//! # Quickstart
//!
//! Protocols are constructed *by name* through the registry and run
//! through the `Simulation` builder, which validates the configuration —
//! participant counts, round budgets, protocol/channel-mode compatibility
//! — before a single trial executes:
//!
//! ```
//! use contention_predictions::info::{CondensedDistribution, SizeDistribution};
//! use contention_predictions::protocols::ProtocolSpec;
//! use contention_predictions::sim::Simulation;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A learned prediction: the network usually has ~64 active stations.
//! let prediction = SizeDistribution::bimodal(4096, 64, 2048, 0.9)?;
//!
//! // Tonight the network actually has 70 active stations.
//! let stats = Simulation::builder()
//!     .protocol(
//!         ProtocolSpec::new("sorted-guess-cycling")
//!             .universe(4096)
//!             .prediction(CondensedDistribution::from_sizes(&prediction)),
//!     )
//!     .participants(70)
//!     .max_rounds(4096)
//!     .trials(200)
//!     .seed(1)
//!     .run()?;
//! assert!(stats.success_rate() > 0.99);
//! # Ok(())
//! # }
//! ```
//!
//! Run `cargo run --bin crp_experiments -- list` to enumerate every
//! registered protocol, and see `README.md` for the architecture overview.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Information-theory substrate (re-export of `crp-info`).
pub use crp_info as info;

/// Multiple-access channel simulator (re-export of `crp-channel`).
pub use crp_channel as channel;

/// Prediction substrate (re-export of `crp-predict`).
pub use crp_predict as predict;

/// Contention-resolution protocols (re-export of `crp-protocols`).
pub use crp_protocols as protocols;

/// Fleet dispatch: framed worker protocol, long-lived stdio/TCP workers
/// and the straggler-retrying dispatcher (re-export of `crp-fleet`).
pub use crp_fleet as fleet;

/// The persistent sweep service: warm-fleet daemon, content-addressed
/// result cache, and the framed submit/progress/result client protocol
/// (re-export of `crp-serve`).
pub use crp_serve as serve;

/// Monte-Carlo experiment harness (re-export of `crp-sim`).
pub use crp_sim as sim;

/// Model-based scenario fuzzing: adversarial trace models, property
/// oracles over sweep results, the deterministic shrinker and the
/// reproducer corpus (re-export of `crp-fuzz`).
pub use crp_fuzz as fuzz;
